// Package tier is the sharded serving tier over cmd/serve replicas: a
// consistent-hash router with bounded-load spill, per-replica and
// per-client admission control, a shared read-through verdict store, and
// health-gated rolling reloads.
//
// The routing key is the same sha-256 canonical-print hash the scan cache
// uses (scan.HashSnippet), so every request for one loop — /predict,
// /suggest, or a loop inside /scan — lands on the replica whose LRU and
// batcher already saw it. Replica health is overlaid at lookup time: the
// ring itself is immutable, and draining/ejected replicas are skipped by
// walking the key's deterministic spill sequence.
package tier

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pragformer/internal/cast"
	"pragformer/internal/cparse"
	"pragformer/internal/obs"
	"pragformer/internal/s2s"
	"pragformer/internal/scan"
)

// Config parameterizes the router.
type Config struct {
	// Replicas lists the cmd/serve base URLs ("http://host:port").
	Replicas []string
	// VNodes is the virtual nodes per replica on the hash ring (0 = 64).
	VNodes int
	// LoadFactor bounds how far above the mean a replica's router-side
	// in-flight count may sit before a key spills to the next replica in
	// its walk order (0 = 1.25, the classic bounded-load setting).
	LoadFactor float64
	// MaxInFlight is the hard per-replica in-flight cap; with every
	// routable replica at the cap the router sheds (429). 0 = 64.
	MaxInFlight int
	// FailThreshold ejects a replica after this many consecutive forward
	// or probe failures (0 = 3).
	FailThreshold int
	// ProbeInterval paces the background health prober (0 = 2s).
	ProbeInterval time.Duration
	// DrainTimeout bounds each replica's drain during a rolling reload
	// and the readiness wait after it (0 = 10s).
	DrainTimeout time.Duration
	// RatePerSec/Burst configure the per-client token buckets
	// (RatePerSec <= 0 disables client rate limiting).
	RatePerSec float64
	Burst      int
	// Backend/ModelID name the verdict namespace. Backend "" adopts the
	// first backend a probe reports. Verdicts are stored under
	// backend|model|generation|hash, so a fleet serving mixed models can
	// never replay a verdict across bundles.
	Backend string
	ModelID string
	// ScanWorkers is the default parse worker count for /scan (0 = 4).
	ScanWorkers int
	// Store is the shared verdict store (nil = a fresh in-memory store).
	Store scan.VerdictStore
	// Client is the HTTP client for forwards and probes (nil = a client
	// with a 30s timeout).
	Client *http.Client
	// Metrics is the telemetry registry GET /metrics exposes; nil gets a
	// private registry so embedded routers and tests never cross-wire
	// series.
	Metrics *obs.Registry
	// Trace makes the router trace every request, not just those carrying
	// the X-PF-Trace header. Traces propagate to replicas over fan-out
	// forwards and replica spans are merged into the response.
	Trace bool
	// Logger, when set, receives one structured line per traced request.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.ScanWorkers <= 0 {
		c.ScanWorkers = 4
	}
	if c.Store == nil {
		c.Store = scan.NewMemStore()
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
}

// errNoReplica reports that no routable replica could accept a request —
// the router-level saturation signal, rendered as 429/503.
var errNoReplica = errors.New("tier: no routable replica")

// Router fans requests across the replica fleet.
type Router struct {
	cfg     Config
	ring    *ring
	reps    map[string]*replica
	order   []string // config order, for display and rolling reload
	store   scan.VerdictStore
	limiter *limiter
	client  *http.Client
	reg     *obs.Registry
	// deadlineExp counts forwards abandoned because the client budget
	// expired between admission and the forward itself (the middleware
	// already sheds budgets that arrive expired).
	deadlineExp *obs.Counter

	backend atomic.Pointer[string] // adopted verdict-namespace backend

	forwards    atomic.Uint64
	forwardErrs atomic.Uint64
	sheds       atomic.Uint64
	rateLimited atomic.Uint64
	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	ejects      atomic.Uint64
	readmits    atomic.Uint64
	reloads     atomic.Uint64
	// storeGen names the verdict-store generation: rolled forward after a
	// rolling reload so verdicts from the old bundle cannot replay.
	storeGen atomic.Uint64

	reloadMu sync.Mutex // one rolling reload at a time

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over the configured replicas and starts its health
// prober. Close releases the prober.
func New(cfg Config) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("tier: no replicas configured")
	}
	rt := &Router{
		cfg:     cfg,
		ring:    newRing(cfg.Replicas, cfg.VNodes),
		reps:    make(map[string]*replica, len(cfg.Replicas)),
		order:   append([]string(nil), cfg.Replicas...),
		store:   cfg.Store,
		limiter: newLimiter(cfg.RatePerSec, cfg.Burst),
		client:  cfg.Client,
		reg:     cfg.Metrics,
		done:    make(chan struct{}),
	}
	if rt.reg == nil {
		rt.reg = obs.NewRegistry()
	}
	b := cfg.Backend
	rt.backend.Store(&b)
	for _, name := range cfg.Replicas {
		if _, dup := rt.reps[name]; dup {
			return nil, fmt.Errorf("tier: duplicate replica %q", name)
		}
		rt.reps[name] = newReplica(name)
	}
	rt.registerMetrics()
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Metrics exposes the router's telemetry registry (the one GET /metrics
// renders).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// registerMetrics wires the router counters and per-replica gauges into
// the registry.
func (rt *Router) registerMetrics() {
	reg := rt.reg
	rt.deadlineExp = reg.Counter("pf_deadline_exceeded_total",
		"Requests shed because the client deadline had already expired.",
		obs.Labels{"path": "forward"})
	reg.CounterFunc("pf_forwards_total", "Forwards attempted to replicas.", nil, rt.forwards.Load)
	reg.CounterFunc("pf_forward_errors_total", "Forwards that failed at transport or replica level.", nil, rt.forwardErrs.Load)
	reg.CounterFunc("pf_sheds_total", "Request items shed with no routable replica.", nil, rt.sheds.Load)
	reg.CounterFunc("pf_rate_limited_total", "Requests refused by the per-client token buckets.", nil, rt.rateLimited.Load)
	reg.CounterFunc("pf_store_hits_total", "Verdict-store read-through hits.", nil, rt.storeHits.Load)
	reg.CounterFunc("pf_store_misses_total", "Verdict-store read-through misses.", nil, rt.storeMisses.Load)
	reg.CounterFunc("pf_ejects_total", "Replicas ejected after consecutive failures.", nil, rt.ejects.Load)
	reg.CounterFunc("pf_readmits_total", "Ejected replicas readmitted after a healthy re-probe.", nil, rt.readmits.Load)
	reg.CounterFunc("pf_reloads_total", "Completed rolling reloads.", nil, rt.reloads.Load)
	reg.GaugeFunc("pf_store_len", "Verdicts currently in the shared store.", nil,
		func() float64 { return float64(rt.store.Len()) })
	reg.GaugeFunc("pf_store_generation", "Verdict-store generation (rolled by reloads).", nil,
		func() float64 { return float64(rt.storeGen.Load()) })
	for _, name := range rt.order {
		rep := rt.reps[name]
		l := obs.Labels{"replica": name}
		reg.CounterFunc("pf_statz_errors_total",
			"Failed replica /statz probes (silent health-poll failures).", l, rep.statzErrs.Load)
		reg.GaugeFunc("pf_replica_in_flight", "Router-side in-flight forwards per replica.", l,
			func() float64 { return float64(rep.inflight.Load()) })
	}
}

// Close stops the background prober.
func (rt *Router) Close() {
	close(rt.done)
	rt.wg.Wait()
}

// Handler returns the router's HTTP API — the same surface as one
// cmd/serve replica, fleet-wide. The request-serving POST routes run
// under the obs middleware (duration histograms, X-PF-Trace propagation,
// X-PF-Deadline-Ms enforcement), then the token-bucket gate.
func (rt *Router) Handler() http.Handler {
	mw := obs.NewMiddleware(rt.reg, rt.cfg.Trace, rt.cfg.Logger)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", mw.Wrap("/predict", rt.admitted(rt.handlePredict)))
	mux.HandleFunc("POST /suggest", mw.Wrap("/suggest", rt.admitted(rt.handleSuggest)))
	mux.HandleFunc("POST /scan", mw.Wrap("/scan", rt.admitted(rt.handleScan)))
	mux.HandleFunc("POST /reload", rt.handleReload)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /statz", rt.handleStatz)
	mux.Handle("GET /metrics", rt.reg.Handler())
	return mux
}

// admitted wraps a handler with the per-client token-bucket gate.
func (rt *Router) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		end := obs.TraceFrom(r.Context()).Start("admit")
		ok := rt.limiter.allow(clientKey(r), time.Now())
		end()
		if !ok {
			rt.rateLimited.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return
		}
		h(w, r)
	}
}

// pick selects the replica for a key: the first routable replica in the
// key's walk order whose in-flight count sits under the bounded-load
// threshold ceil(LoadFactor·(total+1)/healthy). At least one routable
// replica is always under that threshold, so pick only returns nil when
// every routable replica is at the MaxInFlight hard cap — true saturation
// — or when nothing is routable at all.
func (rt *Router) pick(key string) *replica {
	walk := rt.ring.walk(key)
	routable := make([]*replica, 0, len(walk))
	var total int64
	for _, name := range walk {
		r := rt.reps[name]
		if r.routable() {
			routable = append(routable, r)
			total += r.inflight.Load()
		}
	}
	if len(routable) == 0 {
		return nil
	}
	threshold := int64(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(len(routable))))
	var best *replica
	for _, r := range routable {
		load := r.inflight.Load()
		if load >= int64(rt.cfg.MaxInFlight) {
			continue
		}
		if load < threshold {
			return r
		}
		if best == nil || load < best.inflight.Load() {
			best = r
		}
	}
	return best
}

// forward POSTs body to rep and decodes the reply into out, carrying the
// bounded-load in-flight accounting and the ejection failure counting.
// A replica-side 429 propagates as serve.ErrSaturated-alike shedding but
// does NOT count toward ejection — a saturated replica is healthy.
func (rt *Router) forward(ctx context.Context, rep *replica, path string, body, out any) error {
	// A budget that expired while the request sat in admission or an
	// earlier group's shadow is shed here, before marshal and transport.
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			rt.deadlineExp.Inc()
		}
		return err
	}
	tr := obs.TraceFrom(ctx)
	defer tr.Start("forward")()
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rt.forwards.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.name+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID)
	}
	obs.SetDeadlineHeader(ctx, req.Header)
	resp, err := rt.client.Do(req)
	if err != nil {
		// Transport failure: connection refused, timeout — the ejection
		// signal. Context cancellation is the client's doing, not the
		// replica's.
		if ctx.Err() == nil {
			rt.noteFailure(rep)
		}
		rt.forwardErrs.Add(1)
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		rep.fails.Store(0)
		return errNoReplica
	case resp.StatusCode >= 500:
		rt.noteFailure(rep)
		rt.forwardErrs.Add(1)
		return fmt.Errorf("tier: %s%s: %s", rep.name, path, readErr(resp.Body))
	case resp.StatusCode != http.StatusOK:
		rep.fails.Store(0)
		return fmt.Errorf("tier: %s%s: %s", rep.name, path, readErr(resp.Body))
	}
	rep.fails.Store(0)
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}

// readErr extracts the {"error": ...} body of a failed forward.
func readErr(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return "replica error"
}

// noteFailure counts one consecutive failure and ejects the replica at
// the threshold.
func (rt *Router) noteFailure(rep *replica) {
	if int(rep.fails.Add(1)) >= rt.cfg.FailThreshold &&
		rep.state.CompareAndSwap(int32(stateHealthy), int32(stateEjected)) {
		rt.ejects.Add(1)
	}
}

// probeLoop is the background health prober: it refreshes routable
// replicas' admission stats, ejects on consecutive probe failures, and
// re-probes ejected replicas with exponential backoff until they answer
// /readyz again.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	backoff := make(map[string]int) // consecutive failed re-probes, per ejected replica
	skip := make(map[string]int)    // prober ticks left before the next re-probe
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-tick.C:
		}
		for _, name := range rt.order {
			rep := rt.reps[name]
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeInterval)
			switch rep.getState() {
			case stateEjected:
				if skip[name] > 0 {
					skip[name]--
					break
				}
				if err := rep.probeReady(ctx, rt.client); err != nil {
					backoff[name]++
					n := backoff[name]
					if n > 5 {
						n = 5 // cap the re-probe gap at 32 ticks
					}
					skip[name] = 1<<n - 1
					break
				}
				delete(backoff, name)
				delete(skip, name)
				rep.fails.Store(0)
				rep.setState(stateHealthy)
				rt.readmits.Add(1)
			case stateHealthy:
				if err := rep.probeStatz(ctx, rt.client); err != nil {
					rt.noteFailure(rep)
					break
				}
				rep.fails.Store(0)
				rt.adoptBackend(rep)
			}
			cancel()
		}
	}
}

// adoptBackend fills the verdict-store namespace backend from the first
// replica that reports one, when the config left it open. Only the prober
// goroutine writes, so a plain store is race-free.
func (rt *Router) adoptBackend(rep *replica) {
	if *rt.backend.Load() != "" {
		return
	}
	if b := *rep.backend.Load(); b != "" {
		rt.backend.Store(&b)
	}
}

// backendLabel is the namespace backend currently in force.
func (rt *Router) backendLabel() string { return *rt.backend.Load() }

// storeKey namespaces a loop hash: verdicts never replay across backends,
// model bundles, or reload generations.
func (rt *Router) storeKey(hash string) string {
	return rt.backendLabel() + "|" + rt.cfg.ModelID + "|g" + fmt.Sprint(rt.storeGen.Load()) + "|" + hash
}

// canonical parses one snippet and returns its canonically printed target
// loop plus the scan-compatible content hash; ok is false when the snippet
// has no parseable loop (such requests still route, by raw-text hash).
func canonical(code string) (snippet, hash string, ok bool) {
	f, err := cparse.Parse(code)
	if err != nil {
		return "", "", false
	}
	loop := s2s.FirstLoop(f)
	if loop == nil {
		return "", "", false
	}
	snip := cast.Print(loop)
	return snip, scan.HashSnippet(snip), true
}

// routeKey is the ring key for one code snippet: the canonical loop hash
// when the snippet parses (cache affinity with /scan and the verdict
// store), else the hash of the raw text.
func routeKey(code string) string {
	if _, h, ok := canonical(code); ok {
		return h
	}
	return scan.HashSnippet(code)
}

// idsKey is the ring key for a raw id sequence.
func idsKey(ids []int) string {
	var buf bytes.Buffer
	tmp := make([]byte, binary.MaxVarintLen64)
	for _, id := range ids {
		buf.Write(tmp[:binary.PutVarint(tmp, int64(id))])
	}
	return scan.HashSnippet(buf.String())
}

// ---- wire mirrors of the cmd/serve JSON API ----

type predictRequest struct {
	Code  string   `json:"code,omitempty"`
	Codes []string `json:"codes,omitempty"`
	IDs   [][]int  `json:"ids,omitempty"`
}

type predictResult struct {
	Probability float64 `json:"probability"`
	Parallelize bool    `json:"parallelize"`
	Error       string  `json:"error,omitempty"`
}

type predictResponse struct {
	Results []predictResult `json:"results"`
	// Trace carries the replica-side spans when the forward was traced
	// (merged router-side) — and, on the router's own response, the merged
	// fleet-wide trace.
	Trace *obs.Wire `json:"trace,omitempty"`
}

type suggestRequest struct {
	Code  string   `json:"code,omitempty"`
	Codes []string `json:"codes,omitempty"`
}

type suggestResponse struct {
	Results []suggestResult `json:"results"`
	Trace   *obs.Wire       `json:"trace,omitempty"`
}

// group is one replica's slice of a fanned-out request.
type group struct {
	rep     *replica
	indices []int
}

// groupByKey routes each key and buckets the indices per replica,
// preserving request order inside each bucket. Unroutable indices land in
// the nil-replica bucket.
func (rt *Router) groupByKey(keys []string) []*group {
	var groups []*group
	byRep := make(map[*replica]*group)
	for i, key := range keys {
		rep := rt.pick(key)
		g := byRep[rep]
		if g == nil {
			g = &group{rep: rep}
			byRep[rep] = g
			groups = append(groups, g)
		}
		g.indices = append(g.indices, i)
	}
	return groups
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	tr := obs.TraceFrom(r.Context())
	codes := req.Codes
	if req.Code != "" {
		codes = append(codes, req.Code)
	}
	// Response order is codes then ids, matching one replica's contract.
	endRoute := tr.Start("route")
	keys := make([]string, 0, len(codes)+len(req.IDs))
	for _, code := range codes {
		keys = append(keys, routeKey(code))
	}
	for _, ids := range req.IDs {
		keys = append(keys, idsKey(ids))
	}
	groups := rt.groupByKey(keys)
	endRoute()
	results := make([]predictResult, len(keys))
	var wg sync.WaitGroup
	var shed atomic.Int64
	for _, g := range groups {
		if g.rep == nil {
			for _, i := range g.indices {
				results[i].Error = errNoReplica.Error()
				shed.Add(1)
			}
			rt.sheds.Add(uint64(len(g.indices)))
			continue
		}
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			sub := predictRequest{}
			for _, i := range g.indices {
				if i < len(codes) {
					sub.Codes = append(sub.Codes, codes[i])
				} else {
					sub.IDs = append(sub.IDs, req.IDs[i-len(codes)])
				}
			}
			var resp predictResponse
			err := rt.forward(r.Context(), g.rep, "/predict", sub, &resp)
			settleGroup(g, results, resp.Results, err, setPredictErr, &shed, &rt.sheds)
			if err == nil {
				tr.Merge(resp.Trace)
			}
		}(g)
	}
	wg.Wait()
	if len(results) > 0 && int(shed.Load()) == len(results) {
		shedResponse(w)
		return
	}
	writeJSON(w, predictResponse{Results: results, Trace: tr.Wire()})
}

// settleGroup copies one replica's results back into request order, or
// spreads the group-wide error over its items (a replica-side shed counts
// toward the whole-request 429 decision).
func settleGroup[R any](g *group, out, in []R, err error, setErr func(*R, string), shed *atomic.Int64, sheds *atomic.Uint64) {
	if err != nil {
		for _, i := range g.indices {
			setErr(&out[i], err.Error())
			if errors.Is(err, errNoReplica) {
				shed.Add(1)
				sheds.Add(1)
			}
		}
		return
	}
	for k, i := range g.indices {
		if k < len(in) {
			out[i] = in[k]
		} else {
			setErr(&out[i], "tier: short replica response")
		}
	}
}

func setPredictErr(r *predictResult, msg string) { r.Error = msg }
func setSuggestErr(r *suggestResult, msg string) { r.Error = msg }

func (rt *Router) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req suggestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	tr := obs.TraceFrom(r.Context())
	codes := req.Codes
	if req.Code != "" {
		codes = append(codes, req.Code)
	}
	results := make([]suggestResult, len(codes))
	keys := make([]string, len(codes))
	canon := make([]bool, len(codes)) // request text IS the canonical print
	served := make([]bool, len(codes))
	endRoute := tr.Start("route")
	for i, code := range codes {
		snip, h, ok := canonical(code)
		if !ok {
			keys[i] = scan.HashSnippet(code)
			continue
		}
		keys[i] = h
		canon[i] = code == snip
		// Read-through: a stored verdict for this canonical loop answers
		// without a forward — the scan dedupe contract, fleet-wide.
		endGet := tr.Start("store.get")
		s, hit := rt.store.Get(rt.storeKey(h))
		endGet()
		if hit {
			rt.storeHits.Add(1)
			results[i] = verdictToResult(s)
			served[i] = true
		} else {
			rt.storeMisses.Add(1)
		}
	}
	var pending []int
	for i := range codes {
		if !served[i] {
			pending = append(pending, i)
		}
	}
	var wg sync.WaitGroup
	var shed atomic.Int64
	pendKeys := make([]string, len(pending))
	for k, i := range pending {
		pendKeys[k] = keys[i]
	}
	groups := rt.groupByKey(pendKeys)
	endRoute()
	for _, g := range groups {
		mapped := &group{rep: g.rep}
		for _, k := range g.indices {
			mapped.indices = append(mapped.indices, pending[k])
		}
		if mapped.rep == nil {
			for _, i := range mapped.indices {
				results[i].Error = errNoReplica.Error()
				shed.Add(1)
			}
			rt.sheds.Add(uint64(len(mapped.indices)))
			continue
		}
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			sub := suggestRequest{}
			for _, i := range g.indices {
				sub.Codes = append(sub.Codes, codes[i])
			}
			var resp suggestResponse
			err := rt.forward(r.Context(), g.rep, "/suggest", sub, &resp)
			settleGroup(g, results, resp.Results, err, setSuggestErr, &shed, &rt.sheds)
			if err != nil {
				return
			}
			tr.Merge(resp.Trace)
			// Populate the shared store — only for canonical-form requests,
			// so a formatting variant can never poison the canonical loop's
			// verdict slot.
			endPut := tr.Start("store.put")
			for k, i := range g.indices {
				if k < len(resp.Results) && canon[i] && resp.Results[k].Error == "" {
					rt.store.Put(rt.storeKey(keys[i]), resultToVerdict(&resp.Results[k]))
				}
			}
			endPut()
		}(mapped)
	}
	wg.Wait()
	if len(results) > 0 && int(shed.Load()) == len(results) {
		shedResponse(w)
		return
	}
	writeJSON(w, suggestResponse{Results: results, Trace: tr.Wire()})
}

// handleReload runs the rolling reload: one replica at a time is drained
// (the ring stops routing to it, in-flight forwards finish), told to
// POST /reload, health-gated on /readyz reporting the bumped generation,
// and readmitted — the fleet never has more than one replica out of
// rotation, and no in-flight request is dropped. Afterwards the verdict
// store rolls to a new generation: verdicts from the old bundles cannot
// replay against the new ones.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	type outcome struct {
		Replica    string `json:"replica"`
		Status     string `json:"status"`
		Generation uint64 `json:"generation,omitempty"`
		Error      string `json:"error,omitempty"`
	}
	outcomes := make([]outcome, 0, len(rt.order))
	failed := 0
	for _, name := range rt.order {
		rep := rt.reps[name]
		if rep.getState() == stateEjected {
			outcomes = append(outcomes, outcome{Replica: name, Status: "skipped (ejected)"})
			failed++
			continue
		}
		oldGen := rep.generation.Load()
		rep.setState(stateDraining)
		err := rt.rollOne(r.Context(), rep, oldGen)
		rep.setState(stateHealthy) // readmit even on failure: it still serves the old bundle
		if err != nil {
			outcomes = append(outcomes, outcome{Replica: name, Status: "failed", Error: err.Error()})
			failed++
			continue
		}
		outcomes = append(outcomes, outcome{Replica: name, Status: "reloaded", Generation: rep.generation.Load()})
	}
	rt.storeGen.Add(1)
	rt.reloads.Add(1)
	status := "reloaded"
	code := http.StatusOK
	if failed > 0 {
		status = "partial"
		if failed == len(rt.order) {
			status = "failed"
			code = http.StatusInternalServerError
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status, "replicas": outcomes, "store_generation": rt.storeGen.Load(),
	})
}

// rollOne drains, reloads, and health-gates one replica.
func (rt *Router) rollOne(ctx context.Context, rep *replica, oldGen uint64) error {
	deadline := time.Now().Add(rt.cfg.DrainTimeout)
	for rep.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("drain timeout with %d in flight", rep.inflight.Load())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.name+"/reload", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload: %s", resp.Status)
	}
	// Health gate: readmit only after the replica reports ready on the NEW
	// generation.
	deadline = time.Now().Add(rt.cfg.DrainTimeout)
	for {
		if err := rep.probeStatz(ctx, rt.client); err == nil &&
			rep.ready.Load() && rep.generation.Load() > oldGen {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not ready on new generation after reload")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "replicas": len(rt.order)})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, rep := range rt.reps {
		if rep.routable() {
			healthy++
		}
	}
	body := map[string]any{"ready": healthy > 0, "healthy": healthy, "replicas": len(rt.order)}
	if healthy == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(body)
		return
	}
	writeJSON(w, body)
}

// tierStatz is the router's /statz body.
type tierStatz struct {
	Backend          string         `json:"backend"`
	ModelID          string         `json:"model_id,omitempty"`
	Forwards         uint64         `json:"forwards"`
	ForwardErrs      uint64         `json:"forward_errors"`
	Sheds            uint64         `json:"sheds"`
	RateLimited      uint64         `json:"rate_limited"`
	DeadlineExceeded uint64         `json:"deadline_exceeded"`
	StoreHits        uint64         `json:"store_hits"`
	StoreMisses      uint64         `json:"store_misses"`
	StoreLen         int            `json:"store_len"`
	StoreGen         uint64         `json:"store_generation"`
	Ejects           uint64         `json:"ejects"`
	Readmits         uint64         `json:"readmits"`
	Reloads          uint64         `json:"reloads"`
	Replicas         []replicaStatd `json:"replicas"`
	// Latency carries the router's request-duration percentiles per HTTP
	// path — the same histograms GET /metrics exposes.
	Latency map[string]latencyStatz `json:"latency,omitempty"`
}

// latencyStatz is one path's request-duration summary in milliseconds.
type latencyStatz struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// replicaStatd is one replica's row in the router's /statz.
type replicaStatd struct {
	Name       string `json:"name"`
	State      string `json:"state"`
	InFlight   int64  `json:"in_flight"`
	QueueDepth int64  `json:"queue_depth"`
	Generation uint64 `json:"generation"`
	Backend    string `json:"backend,omitempty"`
	// StatzErrors counts failed health-poll /statz probes — previously
	// silent transport or decode failures, surfaced per replica.
	StatzErrors uint64 `json:"statz_errors"`
	// P99Ms is the replica's own worst-path p99 request latency as last
	// reported through its /statz poll; 0 until a poll carries one.
	P99Ms float64 `json:"p99_ms,omitempty"`
}

func (rt *Router) handleStatz(w http.ResponseWriter, _ *http.Request) {
	st := tierStatz{
		Backend: rt.backendLabel(), ModelID: rt.cfg.ModelID,
		Forwards: rt.forwards.Load(), ForwardErrs: rt.forwardErrs.Load(),
		Sheds: rt.sheds.Load(), RateLimited: rt.rateLimited.Load(),
		DeadlineExceeded: rt.deadlineExp.Value(),
		StoreHits:        rt.storeHits.Load(), StoreMisses: rt.storeMisses.Load(),
		StoreLen: rt.store.Len(), StoreGen: rt.storeGen.Load(),
		Ejects: rt.ejects.Load(), Readmits: rt.readmits.Load(),
		Reloads: rt.reloads.Load(),
		Latency: map[string]latencyStatz{},
	}
	for _, path := range []string{"/predict", "/suggest", "/scan"} {
		h := obs.RequestHistogram(rt.reg, path)
		if h.Count() > 0 {
			st.Latency[path] = latencyStatz{
				Count: h.Count(),
				P50Ms: h.Quantile(0.50) * 1000, P90Ms: h.Quantile(0.90) * 1000,
				P99Ms: h.Quantile(0.99) * 1000, MaxMs: h.Max() * 1000,
			}
		}
	}
	for _, name := range rt.order {
		rep := rt.reps[name]
		st.Replicas = append(st.Replicas, replicaStatd{
			Name: name, State: rep.getState().String(),
			InFlight: rep.inflight.Load(), QueueDepth: rep.queueDepth.Load(),
			Generation: rep.generation.Load(), Backend: *rep.backend.Load(),
			StatzErrors: rep.statzErrs.Load(),
			P99Ms:       float64(rep.p99Micros.Load()) / 1000,
		})
	}
	writeJSON(w, st)
}

// shedResponse is the router's saturation reply.
func shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "no replica can accept the request, retry later")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
