// Advisor: the paper's "immediate on-the-fly advice" scenario (§2.1). A
// trained PragFormer inspects loops a developer is writing — without
// compiling or executing anything — and for each one reports whether it
// deserves an OpenMP directive, which clauses the dependence analysis
// supports, what ComPar (the S2S baseline) would do, and which tokens drove
// the model's decision (LIME).
//
// The whole editor buffer goes through advisor.Models.SuggestBatch in one
// call: the directive classifier runs once over all loops (a batched
// forward), clause analysis and S2S corroboration stay per-loop. See
// README.md in this directory for the API walkthrough.
package main

import (
	"fmt"
	"math"
	"strings"

	"pragformer/internal/advisor"
	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/lime"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// workInProgress simulates the developer's editor buffer: four loops in
// various states of parallelizability.
var workInProgress = []string{
	// An elementwise kernel begging for a directive.
	"for (i = 0; i < nx; i++) flux[i] = 0.5 * (rho[i] + rho[i+1]) * vel[i];",
	// A scan with a carried dependence.
	"for (i = 1; i < n; i++) csum[i] = csum[i-1] + data[i];",
	// A reduction in the form Cetus cannot match but PragFormer can learn.
	"for (i = 0; i < n; i++) sum = sum + u[i] * u[i];",
	// Output loop: I/O pins the iteration order.
	`for (i = 0; i < n; i++) fprintf(stderr, "%0.2lf ", x[i]);`,
}

func main() {
	models := trainAdvisor()
	explainer := lime.New(7)
	explainer.Samples = 150

	// One batched pass over the whole buffer.
	items, err := models.SuggestBatch(workInProgress)
	if err != nil {
		panic(err)
	}

	for k, src := range workInProgress {
		fmt.Printf("── loop %d %s\n%s\n", k+1, strings.Repeat("─", 40), strings.TrimSpace(src))
		if items[k].Err != nil {
			fmt.Println("  parse error:", items[k].Err)
			continue
		}
		s := items[k].Suggestion
		verdict := "leave serial"
		if s.Parallelize {
			verdict = "add " + s.Directive.String()
		}
		fmt.Printf("  PragFormer: p=%.2f → %s [%s]\n", s.Probability, verdict, s.Corroboration.Tier)
		for _, note := range s.Notes {
			fmt.Printf("  note:       %s\n", note)
		}

		toks, err := tokenize.Extract(src, tokenize.Text)
		if err != nil {
			continue
		}
		logit := func(tokens []string) float64 {
			pr := models.Directive.Predict(models.Vocab.Encode(tokens, models.MaxLen))
			pr = math.Min(math.Max(pr, 1e-6), 1-1e-6)
			return math.Log(pr / (1 - pr))
		}
		var parts []string
		for _, a := range explainer.Explain(toks, logit, 4) {
			parts = append(parts, fmt.Sprintf("%s(%+.2f)", a.Token, a.Weight))
		}
		fmt.Printf("  LIME:       %s\n\n", strings.Join(parts, " "))
	}
}

// trainAdvisor fits a small directive classifier on a generated corpus and
// wraps it in the advisor bundle (clause classifiers omitted: the
// dependence analysis decides clauses on its own).
func trainAdvisor() *advisor.Models {
	c := corpus.Generate(corpus.Config{Seed: 2, Total: 1000})
	split := dataset.Directive(c, dataset.Options{Seed: 2})
	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			panic(err)
		}
		seqs = append(seqs, toks)
	}
	vocab := tokenize.BuildVocab(seqs, 1)
	encode := func(ins []dataset.Instance) []train.Example {
		out := make([]train.Example, len(ins))
		for i, in := range ins {
			toks, _ := tokenize.Extract(in.Rec.Code, tokenize.Text)
			out[i] = train.Example{IDs: vocab.Encode(toks, 64), Label: in.Label}
		}
		return out
	}
	model, err := core.New(core.Config{Vocab: vocab.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("training advisor model...")
	hist := train.Fit(model, encode(split.Train), encode(split.Valid), train.Config{
		Epochs: 6, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: 2,
	})
	fmt.Printf("advisor ready (valid accuracy %.3f)\n\n", hist.Best().ValidAccuracy)
	return &advisor.Models{Directive: model, Vocab: vocab, MaxLen: 64}
}
