package quant

import (
	"math"

	"pragformer/internal/tensor"
)

// Batch-first quantized forwards, mirroring nn/infer.go function by
// function so the parity tests can diff the two stacks layer by layer: the
// same ragged layout (B sequences stacked row-wise, offs[i] marking
// sequence starts), the same pooled intermediates, the same CLS-pruned last
// block. The only arithmetic difference is inside Linear.ApplyInto — every
// weight matmul runs int8 — so any divergence beyond quantization error is
// a bug the layer-by-layer tests localize.

// EmbedBatchInto mirrors nn.Embedding.ForwardBatchInto. It is exported so
// parity tests can drive the stack layer by layer.
func (m *Model) EmbedBatchInto(dst *tensor.Matrix, seqs [][]int) {
	r := 0
	for _, ids := range seqs {
		for t, idx := range ids {
			row := dst.Row(r)
			copy(row, m.Tok.Row(idx))
			tensor.Axpy(1, m.Pos.Row(t), row)
			r++
		}
	}
}

// maxSeqLen returns the longest sequence length in a ragged batch layout
// (at least 1, so scratch slicing always has a non-empty buffer).
func maxSeqLen(offs []int) int {
	maxT := 1
	for s := 0; s+1 < len(offs); s++ {
		if T := offs[s+1] - offs[s]; T > maxT {
			maxT = T
		}
	}
	return maxT
}

// ApplyBatchInto mirrors nn.MultiHeadAttention.ApplyBatchInto: quantized
// Q/K/V/O projections (the input is quantized once and shared across
// Q/K/V), float64 score/softmax/value mixing within each sequence.
func (a *Attention) ApplyBatchInto(dst, x *tensor.Matrix, offs []int) {
	dh := a.D / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	xq := tensor.GetInt8Matrix(x.Rows, x.Cols)
	tensor.QuantizeRowsInto(xq, x)
	q := tensor.GetMatrixDirty(x.Rows, a.D)
	k := tensor.GetMatrixDirty(x.Rows, a.D)
	v := tensor.GetMatrixDirty(x.Rows, a.D)
	a.WQ.ApplyQuantizedInto(q, xq)
	a.WK.ApplyQuantizedInto(k, xq)
	a.WV.ApplyQuantizedInto(v, xq)
	tensor.PutInt8Matrix(xq)
	// Dirty is safe: every row belongs to some non-empty sequence and the
	// strided mix fully assigns those rows.
	concat := tensor.GetMatrixDirty(x.Rows, a.D)

	// As in the float mirror: one score scratch sized for all heads of the
	// longest sequence serves every sequence as an (H·T)×T view.
	maxT := maxSeqLen(offs)
	scoresBuf := tensor.GetVecDirty(a.Heads * maxT * maxT)
	for s := 0; s+1 < len(offs); s++ {
		lo, hi := offs[s], offs[s+1]
		T := hi - lo
		if T == 0 {
			continue
		}
		// All heads of the sequence in one strided batched GEMM each.
		qs := tensor.Matrix{Rows: T, Cols: a.D, Data: q.Data[lo*a.D : hi*a.D]}
		ks := tensor.Matrix{Rows: T, Cols: a.D, Data: k.Data[lo*a.D : hi*a.D]}
		vs := tensor.Matrix{Rows: T, Cols: a.D, Data: v.Data[lo*a.D : hi*a.D]}
		cs := tensor.Matrix{Rows: T, Cols: a.D, Data: concat.Data[lo*a.D : hi*a.D]}
		scores := tensor.Matrix{Rows: a.Heads * T, Cols: T, Data: scoresBuf[:a.Heads*T*T]}
		tensor.AttnScoresInto(&scores, &qs, &ks, a.Heads, scale)
		tensor.RowSoftmax(&scores)
		tensor.AttnMixInto(&cs, &scores, &vs, a.Heads)
	}
	tensor.PutVec(scoresBuf)
	a.WO.ApplyInto(dst, concat)
	tensor.PutMatrix(concat)
	tensor.PutMatrix(v)
	tensor.PutMatrix(k)
	tensor.PutMatrix(q)
}

// ApplyCLSInto mirrors nn.MultiHeadAttention.ApplyCLSInto: only the first
// attention output row of each sequence, with full-width K/V.
func (a *Attention) ApplyCLSInto(dst, x *tensor.Matrix, offs []int) {
	B := len(offs) - 1
	dh := a.D / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	xq := tensor.GetInt8Matrix(x.Rows, x.Cols)
	tensor.QuantizeRowsInto(xq, x)
	k := tensor.GetMatrixDirty(x.Rows, a.D)
	v := tensor.GetMatrixDirty(x.Rows, a.D)
	a.WK.ApplyQuantizedInto(k, xq)
	a.WV.ApplyQuantizedInto(v, xq)
	tensor.PutInt8Matrix(xq)

	xcls := tensor.GetMatrixDirty(B, a.D)
	for s := 0; s < B; s++ {
		copy(xcls.Row(s), x.Row(offs[s]))
	}
	q := tensor.GetMatrixDirty(B, a.D)
	a.WQ.ApplyInto(q, xcls)
	tensor.PutMatrix(xcls)

	concat := tensor.GetMatrix(B, a.D) // zeroed: empty sequences keep zero rows
	scoresBuf := tensor.GetVecDirty(a.Heads * maxSeqLen(offs))
	for s := 0; s < B; s++ {
		lo, hi := offs[s], offs[s+1]
		T := hi - lo
		if T == 0 {
			continue
		}
		// One query row per head: scores is H×T (Tq = 1), mixed into the
		// single concat row.
		qs := tensor.Matrix{Rows: 1, Cols: a.D, Data: q.Data[s*a.D : (s+1)*a.D]}
		ks := tensor.Matrix{Rows: T, Cols: a.D, Data: k.Data[lo*a.D : hi*a.D]}
		vs := tensor.Matrix{Rows: T, Cols: a.D, Data: v.Data[lo*a.D : hi*a.D]}
		cs := tensor.Matrix{Rows: 1, Cols: a.D, Data: concat.Data[s*a.D : (s+1)*a.D]}
		scores := tensor.Matrix{Rows: a.Heads, Cols: T, Data: scoresBuf[:a.Heads*T]}
		tensor.AttnScoresInto(&scores, &qs, &ks, a.Heads, scale)
		tensor.RowSoftmax(&scores)
		tensor.AttnMixInto(&cs, &scores, &vs, a.Heads)
	}
	tensor.PutVec(scoresBuf)
	a.WO.ApplyInto(dst, concat)
	tensor.PutMatrix(concat)
	tensor.PutMatrix(v)
	tensor.PutMatrix(k)
	tensor.PutMatrix(q)
}

// InferBatch mirrors nn.EncoderBlock.InferBatch over the ragged batch,
// returning a pooled matrix the caller must release with tensor.PutMatrix.
func (b *Block) InferBatch(x *tensor.Matrix, offs []int) *tensor.Matrix {
	rows, d := x.Rows, x.Cols
	n1 := tensor.GetMatrixDirty(rows, d)
	b.LN1.ApplyInto(n1, x)
	a := tensor.GetMatrixDirty(rows, d)
	b.Attn.ApplyBatchInto(a, n1, offs)
	h := n1 // n1 is dead after attention; reuse it for the residual
	tensor.AddInto(h, x, a)

	n2 := a // a is dead after the residual
	b.LN2.ApplyInto(n2, h)
	hid := tensor.GetMatrixDirty(rows, b.FF1.Wq.Rows)
	b.FF1.ApplyReLUInto(hid, n2) // fused dequant+bias+ReLU epilogue
	f := n2 // n2 is dead after the first FFN layer
	b.FF2.ApplyInto(f, hid)
	tensor.PutMatrix(hid)

	out := tensor.GetMatrixDirty(rows, d)
	tensor.AddInto(out, h, f)
	tensor.PutMatrix(f)
	tensor.PutMatrix(h)
	return out
}

// InferCLS mirrors nn.EncoderBlock.InferCLS: only the [CLS] output row of
// each sequence, valid solely as the last block of the stack. Returns a
// pooled B×D matrix the caller must release.
func (b *Block) InferCLS(x *tensor.Matrix, offs []int) *tensor.Matrix {
	B := len(offs) - 1
	d := x.Cols
	n1 := tensor.GetMatrixDirty(x.Rows, d)
	b.LN1.ApplyInto(n1, x)
	a := tensor.GetMatrixDirty(B, d)
	b.Attn.ApplyCLSInto(a, n1, offs)
	tensor.PutMatrix(n1)

	h := tensor.GetMatrixDirty(B, d)
	for s := 0; s < B; s++ {
		xr := x.Row(offs[s])
		ar := a.Row(s)
		hr := h.Row(s)
		for j := range hr {
			hr[j] = xr[j] + ar[j]
		}
	}
	n2 := a // a is dead after the residual
	b.LN2.ApplyInto(n2, h)
	hid := tensor.GetMatrixDirty(B, b.FF1.Wq.Rows)
	b.FF1.ApplyReLUInto(hid, n2) // fused dequant+bias+ReLU epilogue
	f := n2
	b.FF2.ApplyInto(f, hid)
	tensor.PutMatrix(hid)

	out := tensor.GetMatrixDirty(B, d)
	tensor.AddInto(out, h, f)
	tensor.PutMatrix(f)
	tensor.PutMatrix(h)
	return out
}

// PredictBatchProbs mirrors core.PragFormer.PredictBatchProbs: both class
// probabilities for every sequence of the ragged batch.
func (m *Model) PredictBatchProbs(idsBatch [][]int) [][2]float64 {
	B := len(idsBatch)
	out := make([][2]float64, B)
	if B == 0 {
		return out
	}
	seqs := make([][]int, B)
	offs := make([]int, B+1)
	for i, ids := range idsBatch {
		if len(ids) == 0 {
			panic("quant: PredictBatch on empty id sequence")
		}
		if len(ids) > m.Cfg.MaxLen {
			ids = ids[:m.Cfg.MaxLen]
		}
		seqs[i] = ids
		offs[i+1] = offs[i] + len(ids)
	}

	x := tensor.GetMatrixDirty(offs[B], m.Cfg.D)
	m.EmbedBatchInto(x, seqs)
	for l := 0; l < len(m.Blocks)-1; l++ {
		next := m.Blocks[l].InferBatch(x, offs)
		tensor.PutMatrix(x)
		x = next
	}
	cls := m.Blocks[len(m.Blocks)-1].InferCLS(x, offs)
	tensor.PutMatrix(x)

	hidden := tensor.GetMatrixDirty(B, m.Cfg.D)
	m.FinalLN.ApplyInto(hidden, cls)
	tensor.PutMatrix(cls)
	h := tensor.GetMatrixDirty(B, m.Cfg.FCHidden)
	m.FC1.ApplyReLUInto(h, hidden) // fused dequant+bias+ReLU epilogue
	tensor.PutMatrix(hidden)
	logits := tensor.GetMatrixDirty(B, 2)
	m.FC2.ApplyInto(logits, h)
	tensor.PutMatrix(h)
	for i := 0; i < B; i++ {
		tensor.SoftmaxVecInto(out[i][:], logits.Row(i))
	}
	tensor.PutMatrix(logits)
	return out
}

// PredictBatch returns the positive-class probability for every sequence.
func (m *Model) PredictBatch(idsBatch [][]int) []float64 {
	probs := m.PredictBatchProbs(idsBatch)
	out := make([]float64, len(probs))
	for i, p := range probs {
		out[i] = p[1]
	}
	return out
}

// PredictLabelBatch applies the paper's 0.5 threshold to a whole batch.
func (m *Model) PredictLabelBatch(idsBatch [][]int) []bool {
	probs := m.PredictBatchProbs(idsBatch)
	out := make([]bool, len(probs))
	for i, p := range probs {
		out[i] = p[1] > 0.5
	}
	return out
}

// Predict is the single-sequence wrapper (core.Backend).
func (m *Model) Predict(ids []int) float64 {
	return m.PredictBatch([][]int{ids})[0]
}

// PredictLabel applies the 0.5 threshold to one sequence (core.Backend).
func (m *Model) PredictLabel(ids []int) bool { return m.Predict(ids) > 0.5 }
