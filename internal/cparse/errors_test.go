package cparse

import (
	"strings"
	"testing"

	"pragformer/internal/cast"
)

// Exhaustive malformed-input coverage: every recovery path must produce an
// error, never a panic or a silent mis-parse.
func TestMalformedInputs(t *testing.T) {
	bad := []string{
		"for (",
		"for (;;",
		"for (i = 0; i < n; i++)",
		"while (x",
		"while",
		"do { x--; } while (x",
		"do { x--; }",
		"if (a > b",
		"if",
		"return",
		"break",
		"continue",
		"int",
		"int x",
		"int x[",
		"int x[3",
		"int x = ;",
		"x ->;",
		"x = a ? b;",
		"x = a ? b :;",
		"f(a,;",
		"a[;",
		"x = (a;",
		"typedef int;",
		"struct;",
		"x..y;",
		"sizeof(;",
		"x = 1 +;",
		"{ int a = 1;",
		"void f(int a { return; }",
	}
	for _, src := range bad {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", src, r)
				}
			}()
			if _, err := Parse(src); err == nil {
				t.Errorf("Parse(%q): expected error", src)
			}
		}()
	}
}

func TestEmptyFile(t *testing.T) {
	f, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Items) != 0 {
		t.Fatalf("items = %d", len(f.Items))
	}
}

func TestPragmaAtEndOfBlock(t *testing.T) {
	// A pragma with nothing after it inside a block must not consume '}'.
	f := mustParse(t, "{ x = 1;\n#pragma omp barrier\n}")
	blk := f.Items[0].(*cast.Block)
	ps, ok := blk.Stmts[len(blk.Stmts)-1].(*cast.PragmaStmt)
	if !ok || ps.Stmt != nil {
		t.Fatalf("trailing pragma mishandled: %#v", blk.Stmts)
	}
}

func TestPragmaAtEOF(t *testing.T) {
	f := mustParse(t, "#pragma omp parallel for")
	ps, ok := f.Items[0].(*cast.PragmaStmt)
	if !ok || ps.Stmt != nil {
		t.Fatalf("items = %#v", f.Items)
	}
}

func TestSizeofTypeForm(t *testing.T) {
	f := mustParse(t, "n = sizeof(unsigned long);")
	sz := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign).R.(*cast.Sizeof)
	if sz.Type == nil || len(sz.Type.Names) != 2 {
		t.Fatalf("sizeof type = %#v", sz.Type)
	}
}

func TestCastVsParenExpr(t *testing.T) {
	// (n) + 1 is arithmetic, not a cast, because n is not a known type.
	f := mustParse(t, "x = (n) + 1;")
	if _, isCast := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign).R.(*cast.Cast); isCast {
		t.Fatal("(n) + 1 parsed as cast")
	}
	// (size_t) n is a cast because size_t is a builtin typedef.
	f = mustParse(t, "x = (size_t) n;")
	if _, isCast := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign).R.(*cast.Cast); !isCast {
		t.Fatal("(size_t) n not parsed as cast")
	}
}

func TestPointerCastForm(t *testing.T) {
	f := mustParse(t, "p = (double *) q;")
	cs, ok := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign).R.(*cast.Cast)
	if !ok || cs.Type.Ptr != 1 {
		t.Fatalf("got %#v", f.Items[0])
	}
}

func TestUnaryOperators(t *testing.T) {
	f := mustParse(t, "y = -x + !b + ~m + *p + &v + +w;")
	ops := map[string]bool{}
	cast.Walk(f, func(n cast.Node) bool {
		if u, ok := n.(*cast.UnaryOp); ok && !u.Postfix {
			ops[u.Op] = true
		}
		return true
	})
	for _, want := range []string{"-", "!", "~", "*", "&", "+"} {
		if !ops[want] {
			t.Errorf("unary %q not parsed", want)
		}
	}
}

func TestPrefixIncrement(t *testing.T) {
	f := mustParse(t, "++x; --y;")
	var pre int
	cast.Walk(f, func(n cast.Node) bool {
		if u, ok := n.(*cast.UnaryOp); ok && !u.Postfix && (u.Op == "++" || u.Op == "--") {
			pre++
		}
		return true
	})
	if pre != 2 {
		t.Errorf("prefix ops = %d", pre)
	}
}

func TestFunctionPrototype(t *testing.T) {
	f := mustParse(t, "double norm(double *v, int n);\nx = norm(a, 3);")
	fd, ok := f.Items[0].(*cast.FuncDef)
	if !ok {
		t.Fatalf("item = %T", f.Items[0])
	}
	if len(fd.Body.Stmts) != 0 {
		t.Error("prototype should have empty body")
	}
}

func TestVoidParamList(t *testing.T) {
	f := mustParse(t, "int get(void) { return 1; }")
	fd := f.Items[0].(*cast.FuncDef)
	if len(fd.Params) != 0 {
		t.Fatalf("params = %d", len(fd.Params))
	}
}

func TestArrayParam(t *testing.T) {
	f := mustParse(t, "void fill(double v[], int n) { v[0] = n; }")
	fd := f.Items[0].(*cast.FuncDef)
	if len(fd.Params[0].ArrayDims) != 1 {
		t.Fatalf("param dims = %#v", fd.Params[0])
	}
}

func TestNestedInitializerList(t *testing.T) {
	f := mustParse(t, "int m[2][2] = {{1, 2}, {3, 4}};")
	d := f.Items[0].(*cast.DeclStmt).Decls[0]
	il, ok := d.Init.(*cast.InitList)
	if !ok || len(il.Elems) != 2 {
		t.Fatalf("init = %#v", d.Init)
	}
	if _, ok := il.Elems[0].(*cast.InitList); !ok {
		t.Fatal("nested list not parsed")
	}
}

func TestLogicalAndBitwiseOps(t *testing.T) {
	src := "r = a && b || c & d | e ^ f;"
	f := mustParse(t, src)
	// || binds loosest: top must be ||.
	top := f.Items[0].(*cast.ExprStmt).X.(*cast.Assign).R.(*cast.BinaryOp)
	if top.Op != "||" {
		t.Fatalf("top = %q", top.Op)
	}
	printed := cast.PrintExpr(f.Items[0].(*cast.ExprStmt).X)
	f2 := mustParse(t, printed+";")
	if cast.Serialize(f) != cast.Serialize(f2) {
		t.Error("precedence round trip failed")
	}
}

func TestShiftOps(t *testing.T) {
	f := mustParse(t, "x = a << 2 >> b;")
	var shifts int
	cast.Walk(f, func(n cast.Node) bool {
		if b, ok := n.(*cast.BinaryOp); ok && (b.Op == "<<" || b.Op == ">>") {
			shifts++
		}
		return true
	})
	if shifts != 2 {
		t.Errorf("shifts = %d", shifts)
	}
}

func TestStaticAndConstDecls(t *testing.T) {
	f := mustParse(t, "static const double eps = 1e-9;")
	d := f.Items[0].(*cast.DeclStmt).Decls[0]
	if len(d.Type.Quals) != 2 {
		t.Fatalf("quals = %v", d.Type.Quals)
	}
}

func TestStructDeclarations(t *testing.T) {
	f := mustParse(t, "struct point p;\nstruct node *head;\nunion conv u;")
	if len(f.Items) != 3 {
		t.Fatalf("items = %d", len(f.Items))
	}
	u := f.Items[2].(*cast.DeclStmt).Decls[0]
	if !u.Type.Union {
		t.Error("union flag lost")
	}
}

func TestParseIdempotentOnCorpusShapes(t *testing.T) {
	srcs := []string{
		"register int r0;\nfor (i = 0; i < 4096; i++) out[i] = in[i] * 0.5;",
		"union conv_u *u0;\nfor (j = 0; j < m; j++) sum += grid[j];",
		"double square(double x) { return x * x; }\nfor (k = 0; k < len; k++) b[k] = square(a[k]);",
	}
	for _, src := range srcs {
		f1 := mustParse(t, src)
		f2 := mustParse(t, cast.Print(f1))
		if cast.Serialize(f1) != cast.Serialize(f2) {
			t.Errorf("round trip mismatch for %q", src)
		}
	}
}

func TestDeepExpressionNoStackIssue(t *testing.T) {
	// 200 nested parens parse without trouble.
	src := "x = " + strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + ";"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
