//go:build amd64 && !purego

#include "textflag.h"

// Float64 AVX2 FMA kernels. Both are bit-identical to the portable
// fallbacks in float.go: VFMADD231PD lanes hold distinct output elements
// (axpy kernel) or the four documented dot partials (dot kernel), so no
// floating-point reassociation happens relative to the scalar code.
//
// Register discipline: R14 (goroutine pointer) and X15/Y15 (ABI zero
// register) are never touched; Y13 holds our +0 constant for ReLU.

// func f64GemmRowAVX2(dst, a *float64, strideA int, b *float64, strideB int, bias *float64, k, n, flags int)
//
// dst[j] = epilogue(bias_j + Σ_{k'<k} a[k'·strideA]·b[k'·strideB+j]) for
// j < n. bias may be nil (seed 0); flags bit 0 applies max(acc, +0) before
// the store. Output columns are tiled 16/8/4 wide (4/2/1 ymm accumulators)
// with a scalar tail; the k loop broadcasts one a element per iteration and
// FMAs a row of b into the accumulators, so every output element is one
// ascending-k fused chain.
TEXT ·f64GemmRowAVX2(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ strideA+16(FP), R8
	SHLQ $3, R8                 // element stride → bytes
	MOVQ b+24(FP), BX
	MOVQ strideB+32(FP), R9
	SHLQ $3, R9
	MOVQ bias+40(FP), R10
	MOVQ k+48(FP), CX
	MOVQ n+56(FP), DX
	MOVQ flags+64(FP), R11

	VXORPD Y13, Y13, Y13        // +0 for the ReLU epilogue

tile16:
	CMPQ DX, $16
	JLT  tile8

	// Seed 4 accumulators from bias (or zero).
	TESTQ R10, R10
	JEQ   t16zero
	VMOVUPD 0(R10), Y4
	VMOVUPD 32(R10), Y5
	VMOVUPD 64(R10), Y6
	VMOVUPD 96(R10), Y7
	ADDQ    $128, R10
	JMP     t16k

t16zero:
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

t16k:
	MOVQ  SI, R12               // a cursor
	MOVQ  BX, R13               // b row cursor (this column tile)
	MOVQ  CX, AX
	TESTQ AX, AX
	JEQ   t16post

t16loop:
	VBROADCASTSD (R12), Y0
	VFMADD231PD  0(R13), Y0, Y4
	VFMADD231PD  32(R13), Y0, Y5
	VFMADD231PD  64(R13), Y0, Y6
	VFMADD231PD  96(R13), Y0, Y7
	ADDQ         R8, R12
	ADDQ         R9, R13
	DECQ         AX
	JNE          t16loop

t16post:
	TESTQ  $1, R11
	JEQ    t16store
	VMAXPD Y13, Y4, Y4          // max(acc, +0): -0 and NaN → +0
	VMAXPD Y13, Y5, Y5
	VMAXPD Y13, Y6, Y6
	VMAXPD Y13, Y7, Y7

t16store:
	VMOVUPD Y4, 0(DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, BX
	SUBQ    $16, DX
	JMP     tile16

tile8:
	CMPQ DX, $8
	JLT  tile4

	TESTQ R10, R10
	JEQ   t8zero
	VMOVUPD 0(R10), Y4
	VMOVUPD 32(R10), Y5
	ADDQ    $64, R10
	JMP     t8k

t8zero:
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5

t8k:
	MOVQ  SI, R12
	MOVQ  BX, R13
	MOVQ  CX, AX
	TESTQ AX, AX
	JEQ   t8post

t8loop:
	VBROADCASTSD (R12), Y0
	VFMADD231PD  0(R13), Y0, Y4
	VFMADD231PD  32(R13), Y0, Y5
	ADDQ         R8, R12
	ADDQ         R9, R13
	DECQ         AX
	JNE          t8loop

t8post:
	TESTQ  $1, R11
	JEQ    t8store
	VMAXPD Y13, Y4, Y4
	VMAXPD Y13, Y5, Y5

t8store:
	VMOVUPD Y4, 0(DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    $64, DI
	ADDQ    $64, BX
	SUBQ    $8, DX

tile4:
	CMPQ DX, $4
	JLT  tail

	TESTQ R10, R10
	JEQ   t4zero
	VMOVUPD 0(R10), Y4
	ADDQ    $32, R10
	JMP     t4k

t4zero:
	VXORPD Y4, Y4, Y4

t4k:
	MOVQ  SI, R12
	MOVQ  BX, R13
	MOVQ  CX, AX
	TESTQ AX, AX
	JEQ   t4post

t4loop:
	VBROADCASTSD (R12), Y0
	VFMADD231PD  0(R13), Y0, Y4
	ADDQ         R8, R12
	ADDQ         R9, R13
	DECQ         AX
	JNE          t4loop

t4post:
	TESTQ  $1, R11
	JEQ    t4store
	VMAXPD Y13, Y4, Y4

t4store:
	VMOVUPD Y4, 0(DI)
	ADDQ    $32, DI
	ADDQ    $32, BX
	SUBQ    $4, DX

tail:
	TESTQ DX, DX
	JEQ   done

tailloop:
	TESTQ R10, R10
	JEQ   tzero
	VMOVSD (R10), X4
	ADDQ   $8, R10
	JMP    tk

tzero:
	VXORPD X4, X4, X4

tk:
	MOVQ  SI, R12
	MOVQ  BX, R13
	MOVQ  CX, AX
	TESTQ AX, AX
	JEQ   tpost

tkloop:
	VMOVSD      (R12), X0
	VFMADD231SD (R13), X0, X4
	ADDQ        R8, R12
	ADDQ        R9, R13
	DECQ        AX
	JNE         tkloop

tpost:
	TESTQ  $1, R11
	JEQ    tstore
	VMAXSD X13, X4, X4

tstore:
	VMOVSD X4, (DI)
	ADDQ   $8, DI
	ADDQ   $8, BX
	DECQ   DX
	JNE    tailloop

done:
	VZEROUPPER
	RET

// func f64DotBT4AVX2(a, b *float64, strideB, k int, out *float64)
//
// out[c] = dot(a[0:k], b[c·strideB : c·strideB+k]) for c in 0..3, computed
// as four FMA lane partials l_c = Σ_{k'≡c (mod 4)} over the 4-aligned
// prefix, reduced (l0+l2)+(l1+l3) via VEXTRACTF128+VADDPD+VHADDPD, then a
// sequential scalar-FMA tail — exactly the tree dotLanes (float.go) builds.
TEXT ·f64DotBT4AVX2(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ strideB+16(FP), R9
	SHLQ $3, R9
	MOVQ k+24(FP), CX
	MOVQ out+32(FP), DI

	// Channel row pointers b0..b3 = b + {0,1,2,3}·strideB.
	MOVQ BX, R10
	LEAQ (BX)(R9*1), R11
	LEAQ (BX)(R9*2), R12
	LEAQ (R11)(R9*2), R13

	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, DX
	ANDQ $-4, DX                // 4-aligned prefix length
	XORQ AX, AX

loop4:
	CMPQ AX, DX
	JGE  reduce
	VMOVUPD     (SI)(AX*8), Y0
	VFMADD231PD (R10)(AX*8), Y0, Y4
	VFMADD231PD (R11)(AX*8), Y0, Y5
	VFMADD231PD (R12)(AX*8), Y0, Y6
	VFMADD231PD (R13)(AX*8), Y0, Y7
	ADDQ        $4, AX
	JMP         loop4

reduce:
	// Lane tree (l0+l2)+(l1+l3) into the low double of each accumulator.
	VEXTRACTF128 $1, Y4, X0
	VADDPD       X0, X4, X4
	VHADDPD      X4, X4, X4
	VEXTRACTF128 $1, Y5, X0
	VADDPD       X0, X5, X5
	VHADDPD      X5, X5, X5
	VEXTRACTF128 $1, Y6, X0
	VADDPD       X0, X6, X6
	VHADDPD      X6, X6, X6
	VEXTRACTF128 $1, Y7, X0
	VADDPD       X0, X7, X7
	VHADDPD      X7, X7, X7

tail:
	CMPQ AX, CX
	JGE  store
	VMOVSD      (SI)(AX*8), X0
	VFMADD231SD (R10)(AX*8), X0, X4
	VFMADD231SD (R11)(AX*8), X0, X5
	VFMADD231SD (R12)(AX*8), X0, X6
	VFMADD231SD (R13)(AX*8), X0, X7
	INCQ        AX
	JMP         tail

store:
	VMOVSD X4, 0(DI)
	VMOVSD X5, 8(DI)
	VMOVSD X6, 16(DI)
	VMOVSD X7, 24(DI)
	VZEROUPPER
	RET

// func f64NormScaleAVX2(dst, src *float64, mean, inv float64, gamma, beta *float64, n4 int)
//
// Layer-norm scale-shift: dst[j] = ((src[j]-mean)·inv)·gamma[j] + beta[j]
// for j < n4, a nonzero multiple of 4. Each lane performs the scalar loop's
// exact operation sequence (VSUBPD, VMULPD, VMULPD, VADDPD — no FMA
// contraction, matching the two-rounding scalar expression), and lanes are
// distinct output elements, so the kernel is bit-identical to the fallback.
TEXT ·f64NormScaleAVX2(SB), NOSPLIT, $0-56
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSD mean+16(FP), Y10
	VBROADCASTSD inv+24(FP), Y11
	MOVQ         gamma+32(FP), R9
	MOVQ         beta+40(FP), R10
	MOVQ         n4+48(FP), CX
	XORQ         AX, AX

normloop:
	VMOVUPD (SI)(AX*8), Y0
	VSUBPD  Y10, Y0, Y0     // src[j] − mean
	VMULPD  Y11, Y0, Y0     // · inv
	VMULPD  (R9)(AX*8), Y0, Y0  // · gamma[j]
	VADDPD  (R10)(AX*8), Y0, Y0 // + beta[j]
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX
	CMPQ    AX, CX
	JLT     normloop

	VZEROUPPER
	RET
