package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refInt8MatMul is the obvious-by-inspection reference the kernel is
// checked against: same int32 accumulation and float32 dequant, no
// blocking or parallelism.
func refInt8MatMul(a, b *Int8Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var acc int32
			for k := 0; k < a.Cols; k++ {
				acc += int32(a.At8(i, k)) * int32(b.At8(j, k))
			}
			out.Set(i, j, float64(float32(acc)*a.Scales[i]*b.Scales[j]))
		}
	}
	return out
}

// At8 returns element (i, j) of an Int8Matrix (test helper).
func (m *Int8Matrix) At8(i, j int) int8 { return m.Data[i*m.Cols+j] }

func randInt8(rng *rand.Rand, rows, cols int) *Int8Matrix {
	m := NewInt8(rows, cols)
	for i := range m.Data {
		m.Data[i] = int8(rng.Intn(255) - 127)
	}
	for i := range m.Scales {
		m.Scales[i] = float32(rng.Float64() + 0.01)
	}
	return m
}

// TestMatMulInt8BTMatchesReference exercises shapes around the blocking
// factor and the parallel threshold.
func TestMatMulInt8BTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][3]int{{1, 1, 1}, {3, 5, 2}, {4, 8, 4}, {7, 9, 6}, {16, 32, 33}, {70, 64, 70}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randInt8(rng, m, k)
		b := randInt8(rng, n, k)
		out := New(m, n)
		MatMulInt8BTInto(out, a, b)
		want := refInt8MatMul(a, b)
		for i := range out.Data {
			if out.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: element %d: got %v want %v", sh, i, out.Data[i], want.Data[i])
			}
		}
	}
}

// TestQuantizeRowsInto checks the absmax scheme: the row maximum maps to
// ±127, reconstruction error is within half a quantization step, and
// all-zero rows round-trip exactly with unit scale.
func TestQuantizeRowsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := New(6, 40)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 3
	}
	// Row 4 all zero; row 5 a single spike.
	clear(x.Row(4))
	clear(x.Row(5))
	x.Row(5)[7] = -2.5

	q := NewInt8(6, 40)
	QuantizeRowsInto(q, x)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		amax := 0.0
		for _, v := range row {
			amax = math.Max(amax, math.Abs(v))
		}
		if amax == 0 {
			if q.Scales[i] != 1 {
				t.Errorf("row %d: zero row scale %v, want 1", i, q.Scales[i])
			}
			for j, v := range q.Row(i) {
				if v != 0 {
					t.Errorf("row %d: zero row has q[%d]=%d", i, j, v)
				}
			}
			continue
		}
		step := amax / 127
		sawMax := false
		for j, v := range row {
			got := float64(q.At8(i, j)) * float64(q.Scales[i])
			if math.Abs(got-v) > step/2+1e-9 {
				t.Errorf("row %d col %d: dequant %v vs %v exceeds step/2 %v", i, j, got, v, step/2)
			}
			if q.At8(i, j) == 127 || q.At8(i, j) == -127 {
				sawMax = true
			}
		}
		if !sawMax {
			t.Errorf("row %d: absmax did not map to ±127", i)
		}
	}
}

// TestInt8KernelScalarSIMDAgree pins the platform SIMD kernel bit-exactly
// to the portable scalar path (int32 accumulation is associative, so the
// two must agree to the last bit) across shapes that exercise both tails.
func TestInt8KernelScalarSIMDAgree(t *testing.T) {
	if int8RowKernel == nil {
		t.Skip("no SIMD kernel installed on this platform")
	}
	rng := rand.New(rand.NewSource(13))
	saved := int8RowKernel
	defer func() { int8RowKernel = saved }()
	for _, sh := range [][3]int{{5, 16, 4}, {8, 32, 32}, {3, 33, 5}, {9, 7, 11}, {70, 48, 66}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randInt8(rng, m, k)
		b := randInt8(rng, n, k)
		simd := New(m, n)
		int8RowKernel = saved
		MatMulInt8BTInto(simd, a, b)
		scalar := New(m, n)
		int8RowKernel = nil
		MatMulInt8BTInto(scalar, a, b)
		for i := range simd.Data {
			if simd.Data[i] != scalar.Data[i] {
				t.Fatalf("shape %v: element %d: simd %v != scalar %v", sh, i, simd.Data[i], scalar.Data[i])
			}
		}
	}
}

// TestQuantizeRowsScalarSIMDAgree pins the asm quantization kernels
// (absmax reduce + fused round/pack) bit-exactly to the scalar
// math.Abs/math.Round path, including widths that exercise the 4-lane
// tails and adversarial values: exact half-way points, negative zeros,
// and magnitudes near the ±127 clamp boundary.
func TestQuantizeRowsScalarSIMDAgree(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels installed on this platform")
	}
	defer SetSIMD(true)
	rng := rand.New(rand.NewSource(19))
	for _, cols := range []int{1, 3, 4, 5, 7, 8, 31, 32, 40, 66} {
		x := New(8, cols)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64() * 5
		}
		// Adversarial rows (clipped to the row width).
		adv := []float64{0.5, -0.5, 1.5, -2.5, math.Copysign(0, -1), 127, -127, 63.5}
		for j := 0; j < cols && j < len(adv); j++ {
			x.Row(1)[j] = adv[j]
		}
		clear(x.Row(2)) // all-zero row

		qSIMD := NewInt8(8, cols)
		SetSIMD(true)
		QuantizeRowsInto(qSIMD, x)

		qScalar := NewInt8(8, cols)
		SetSIMD(false)
		QuantizeRowsInto(qScalar, x)
		SetSIMD(true)

		for i := range qSIMD.Scales {
			if qSIMD.Scales[i] != qScalar.Scales[i] {
				t.Fatalf("cols=%d row %d: simd scale %v != scalar %v", cols, i, qSIMD.Scales[i], qScalar.Scales[i])
			}
		}
		for i := range qSIMD.Data {
			if qSIMD.Data[i] != qScalar.Data[i] {
				t.Fatalf("cols=%d: element %d: simd %d != scalar %d", cols, i, qSIMD.Data[i], qScalar.Data[i])
			}
		}
	}
}

// TestMatMulInt8BTShapePanics pins the panic contract.
func TestMatMulInt8BTShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMulInt8BTInto(New(2, 2), NewInt8(2, 3), NewInt8(2, 4))
}

// TestInt8MatrixPool checks pooled buffers resize and are safe to reuse.
func TestInt8MatrixPool(t *testing.T) {
	m := GetInt8Matrix(4, 40)
	if m.Rows != 4 || m.Cols != 40 || len(m.Data) != 160 || len(m.Scales) != 4 {
		t.Fatalf("GetInt8Matrix shape: %+v", m)
	}
	PutInt8Matrix(m)
	m2 := GetInt8Matrix(2, 16)
	if m2.Rows != 2 || m2.Cols != 16 || len(m2.Data) != 32 || len(m2.Scales) != 2 {
		t.Fatalf("reused matrix shape: %+v", m2)
	}
	PutInt8Matrix(m2)
}

// TestMatMulInt8BTFusedMatchesUnfused pins the fused-epilogue contract:
// MatMulInt8BTFusedInto must be bit-exact against the unfused sequence
// (matmul, then bias add, then ReLU) across blocking tails, with and
// without each epilogue stage.
func TestMatMulInt8BTFusedMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range [][3]int{{1, 1, 1}, {3, 5, 2}, {5, 16, 4}, {7, 9, 6}, {16, 32, 33}, {70, 64, 70}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randInt8(rng, m, k)
		b := randInt8(rng, n, k)
		bias := make([]float64, n)
		for j := range bias {
			bias[j] = rng.NormFloat64()
		}
		for _, withBias := range []bool{false, true} {
			for _, relu := range []bool{false, true} {
				bs := bias
				if !withBias {
					bs = nil
				}
				want := New(m, n)
				MatMulInt8BTInto(want, a, b)
				for i := 0; i < m; i++ {
					row := want.Row(i)
					if bs != nil {
						for j := range row {
							row[j] += bs[j]
						}
					}
					if relu {
						for j, v := range row {
							if !(v > 0) {
								row[j] = 0
							}
						}
					}
				}
				got := New(m, n)
				MatMulInt8BTFusedInto(got, a, b, bs, relu)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("shape %v bias=%v relu=%v: element %d: fused %v != unfused %v",
							sh, withBias, relu, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// quantBenchDim matches the 128×128 float64 benchmark for an apples-to-
// apples kernel comparison (BenchmarkMatMul128).
const quantBenchDim = 128

// BenchmarkQuantizeRows measures per-row activation quantization at the
// serving shape (many short rows), the fixed cost every quantized layer
// pays before its matmul.
func BenchmarkQuantizeRows(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(512, 32).Randn(rng, 1)
	q := NewInt8(512, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeRowsInto(q, x)
	}
}

// BenchmarkMatMulInt8 measures the int8 kernel at the same shape as
// BenchmarkMatMul128; the ratio is the raw kernel-level quantization win.
func BenchmarkMatMulInt8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randInt8(rng, quantBenchDim, quantBenchDim)
	w := randInt8(rng, quantBenchDim, quantBenchDim)
	out := New(quantBenchDim, quantBenchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInt8BTInto(out, a, w)
	}
}
