package s2s

import (
	"errors"
	"strings"
	"testing"

	"pragformer/internal/cast"
	"pragformer/internal/cparse"
)

func TestLooksLikeMacro(t *testing.T) {
	cases := map[string]bool{
		"POLYBENCH_LOOP_BOUND": true,
		"SCALAR_VAL":           true,
		"N":                    false, // too short
		"MAX":                  false, // too short
		"sqrt":                 false, // lowercase
		"MyMacro":              false, // mixed case
		"_FOO":                 true,
		"____":                 false, // no letters
		"SIZE2":                true,
	}
	for s, want := range cases {
		if got := looksLikeMacro(s); got != want {
			t.Errorf("looksLikeMacro(%q) = %v want %v", s, got, want)
		}
	}
}

func TestCetusRejectsUnexpandedMacros(t *testing.T) {
	_, err := Cetus{}.Compile("for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++) a[i] = 0;")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want ErrParse (unexpanded macro)", err)
	}
	// An all-caps plain identifier is fine — only function-like use breaks.
	res, err := Cetus{}.Compile("for (i = 0; i <= NMAX; i++) a[i] = 0;")
	if err != nil {
		t.Fatalf("plain caps identifier rejected: %v", err)
	}
	if res.Directive == nil {
		t.Fatalf("declined: %v", res.Reasons)
	}
}

func TestFirstLoopPrefersTopLevel(t *testing.T) {
	src := `double heavy(int n) { double s = 0; for (int q = 0; q < 100; q++) s += q; return s; }
for (i = 0; i < n; i++) out[i] = heavy(i);`
	f, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := FirstLoop(f)
	if loop == nil {
		t.Fatal("no loop found")
	}
	// The target loop iterates over i, not the helper's q.
	if cond := cast.PrintExpr(loop.Cond); !strings.Contains(cond, "i <") {
		t.Errorf("wrong loop selected: cond %q", cond)
	}
}

func TestFirstLoopFallbackInsideFunc(t *testing.T) {
	src := `void init(double *v, int n) { for (int q = 0; q < n; q++) v[q] = 0; }`
	f, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if FirstLoop(f) == nil {
		t.Fatal("fallback loop not found")
	}
}

func TestFirstLoopNone(t *testing.T) {
	f, err := cparse.Parse("x = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if FirstLoop(f) != nil {
		t.Fatal("loop found where none exists")
	}
}

func TestCompoundAssignPresent(t *testing.T) {
	cases := []struct {
		src, v, op string
		want       bool
	}{
		{"sum += a[i];", "sum", "+", true},
		{"sum  \t+= a[i];", "sum", "+", true},
		{"sum = sum + a[i];", "sum", "+", false},
		{"checksum += a[i];", "sum", "+", false}, // whole-token match
		{"prod *= a[i];", "prod", "*", true},
		{"x -= 1;", "x", "-", true},
		{"", "x", "+", false},
	}
	for _, c := range cases {
		if got := compoundAssignPresent(c.src, c.v, c.op); got != c.want {
			t.Errorf("compoundAssignPresent(%q, %q, %q) = %v want %v", c.src, c.v, c.op, got, c.want)
		}
	}
}

func TestCetusUnbalancedHeavyOmitted(t *testing.T) {
	// Guard function present, heavy function absent: Cetus cannot prove
	// safety and declines — the paper's missing-function-body pitfall.
	src := `int pick(int i) { return i % 3; }
for (i = 0; i <= N; i++) if (pick(i)) out[i] = crunch(i);`
	res, err := Cetus{}.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Directive != nil {
		t.Fatalf("directive despite missing body: %v", res.Directive)
	}
}

func TestStripPragmas(t *testing.T) {
	src := "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = 0;\n  #pragma omp barrier\nx = 1;"
	out := stripPragmas(src)
	if strings.Contains(out, "#pragma") {
		t.Errorf("pragmas survived: %q", out)
	}
	if !strings.Contains(out, "for (i = 0") || !strings.Contains(out, "x = 1;") {
		t.Errorf("code lost: %q", out)
	}
}

func TestAutoParTinyLoopStillAnnotated(t *testing.T) {
	// AutoPar has no profitability model at all.
	res, err := AutoPar{}.Compile("for (i = 0; i < 8; i++) a[i] = b[i];")
	if err != nil {
		t.Fatal(err)
	}
	if res.Directive == nil {
		t.Fatalf("AutoPar declined a trivially parallel tiny loop: %v", res.Reasons)
	}
}

func TestComParMembersConfigurable(t *testing.T) {
	c := &ComPar{Members: []Compiler{Cetus{}}}
	res, err := c.Compile("for (i = 0; i < n; i++) a[i] = b[i];")
	if err != nil {
		t.Fatal(err)
	}
	if res.Directive == nil {
		t.Fatal("single-member ComPar failed")
	}
}
