/* A histogram: the subscript is data-dependent, so no dependence test can
 * order the writes — but every access is the same += accumulation, so the
 * loop parallelizes with reduction(+:hist). */

void histogram(int *hist, int *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        hist[b[i]] += 1;
    }
}
