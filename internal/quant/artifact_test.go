package quant

// PFQNT corrupt/truncated-artifact table tests, mirroring
// internal/core/corrupt_test.go at both layers of the format: the frame
// (magic, version, length, CRC) and the gob manifest inside it. Every
// mutilation must produce a descriptive error — never a panic and never a
// silently partial model.

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pragformer/internal/ckpt"
	"pragformer/internal/tensor"
)

// testConfig is a small two-layer architecture.
func testConfig() Config {
	return Config{Vocab: 60, MaxLen: 24, D: 16, Heads: 4, Layers: 2, FFHidden: 32, FCHidden: 16}
}

// randModel builds a skeleton and fills every tensor with random values, so
// round-trip comparisons can't pass on zeroed buffers.
func randModel(cfg Config, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := newSkeleton(cfg)
	m.walk(
		func(name string, t *tensor.Int8Matrix) {
			for i := range t.Data {
				t.Data[i] = int8(rng.Intn(255) - 127)
			}
			for i := range t.Scales {
				t.Scales[i] = float32(rng.Float64() + 0.01)
			}
		},
		func(name string, rows, cols int, data []float64) {
			for i := range data {
				data[i] = rng.NormFloat64()
			}
		},
	)
	for _, ln := range m.layerNorms() {
		ln.Eps = 1e-5
	}
	return m
}

// TestArtifactRoundTrip checks Save/Load reproduces the model exactly.
func TestArtifactRoundTrip(t *testing.T) {
	m := randModel(testConfig(), 31)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("round-tripped model differs from original")
	}
}

// TestArtifactFileRoundTrip checks the atomic file path and the magic
// sniffer.
func TestArtifactFileRoundTrip(t *testing.T) {
	m := randModel(testConfig(), 32)
	path := filepath.Join(t.TempDir(), "model.pfq")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("file round-tripped model differs from original")
	}
	if ok, err := SniffFile(path); err != nil || !ok {
		t.Fatalf("SniffFile(%s) = %v, %v; want true", path, ok, err)
	}
	other := filepath.Join(t.TempDir(), "not.pfq")
	if err := ckpt.WriteFileAtomic(other, func(w io.Writer) error {
		_, err := w.Write([]byte("definitely not a quantized model"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if ok, err := SniffFile(other); err != nil || ok {
		t.Fatalf("SniffFile on a non-PFQNT file = %v, %v; want false", ok, err)
	}
}

// encodeArtifact frames a (possibly mutated) artifactFile.
func encodeArtifact(t *testing.T, af artifactFile) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(af); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := ckpt.WriteFramed(&out, magic, FormatVersion, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// wireArtifact dumps a model into its artifactFile form for mutilation,
// deep-copying the slices so mutations cannot leak back into the model.
func wireArtifact(m *Model) artifactFile {
	af := artifactFile{Cfg: m.Cfg, Eps: m.FinalLN.Eps}
	m.walk(
		func(name string, tm *tensor.Int8Matrix) {
			af.QNames = append(af.QNames, name)
			af.QShapes = append(af.QShapes, [2]int{tm.Rows, tm.Cols})
			af.QData = append(af.QData, append([]int8(nil), tm.Data...))
			af.QScales = append(af.QScales, append([]float32(nil), tm.Scales...))
		},
		func(name string, rows, cols int, data []float64) {
			af.FNames = append(af.FNames, name)
			af.FShapes = append(af.FShapes, [2]int{rows, cols})
			af.FData = append(af.FData, append([]float64(nil), data...))
		},
	)
	return af
}

// TestLoadRejectsCorruptArtifacts is the manifest-level corruption table.
func TestLoadRejectsCorruptArtifacts(t *testing.T) {
	m := randModel(testConfig(), 33)

	cases := []struct {
		name   string
		mutate func(*artifactFile)
		want   string // substring the error must carry
	}{
		{"missing int8 tensor", func(af *artifactFile) {
			af.QNames = af.QNames[:len(af.QNames)-1]
			af.QShapes = af.QShapes[:len(af.QShapes)-1]
			af.QData = af.QData[:len(af.QData)-1]
			af.QScales = af.QScales[:len(af.QScales)-1]
		}, "int8 tensors"},
		{"int8 manifest skew", func(af *artifactFile) { af.QNames = af.QNames[:len(af.QNames)-1] }, "names"},
		{"float manifest skew", func(af *artifactFile) { af.FData = af.FData[:len(af.FData)-1] }, "float names"},
		{"renamed int8 tensor", func(af *artifactFile) { af.QNames[2] = "bogus" }, "name"},
		{"renamed float tensor", func(af *artifactFile) { af.FNames[1] = "bogus" }, "name"},
		{"wrong int8 shape", func(af *artifactFile) { af.QShapes[1] = [2]int{1, 1} }, "shape"},
		{"wrong float shape", func(af *artifactFile) { af.FShapes[0] = [2]int{1, 1} }, "shape"},
		{"truncated int8 data", func(af *artifactFile) { af.QData[3] = af.QData[3][:1] }, "truncated"},
		{"truncated float data", func(af *artifactFile) { af.FData[0] = af.FData[0][:1] }, "truncated"},
		{"scale count mismatch", func(af *artifactFile) { af.QScales[0] = af.QScales[0][:1] }, "scales"},
		{"invalid config", func(af *artifactFile) { af.Cfg.Heads = 0 }, "config"},
		{"extra int8 tensor", func(af *artifactFile) {
			af.QNames = append(af.QNames, "extra.W")
			af.QShapes = append(af.QShapes, [2]int{1, 1})
			af.QData = append(af.QData, []int8{1})
			af.QScales = append(af.QScales, []float32{1})
		}, "int8 tensors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			af := wireArtifact(m)
			tc.mutate(&af)
			_, err := Load(bytes.NewReader(encodeArtifact(t, af)))
			if err == nil {
				t.Fatal("corrupt artifact loaded without error")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadRejectsCorruptFrames is the frame-level corruption table.
func TestLoadRejectsCorruptFrames(t *testing.T) {
	m := randModel(testConfig(), 34)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	bitFlip := append([]byte(nil), good...)
	bitFlip[len(bitFlip)-3] ^= 0x40
	future := wireArtifact(m)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(future); err != nil {
		t.Fatal(err)
	}
	var futureBuf bytes.Buffer
	if err := ckpt.WriteFramed(&futureBuf, magic, FormatVersion+9, payload.Bytes()); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated header"},
		{"short header", good[:8], "truncated header"},
		{"header only", good[:21], "truncated payload"},
		{"truncated payload", good[:len(good)-7], "truncated payload"},
		{"bad magic", badMagic, "not a quantized model"},
		{"payload bit flip", bitFlip, "CRC mismatch"},
		{"newer version", futureBuf.Bytes(), "newer format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt frame loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
