package core

import (
	"math"
	"math/rand"
	"testing"

	"pragformer/internal/tensor"
)

// maxAbsDiff returns the largest elementwise |a-b| over two equal-shape
// matrices.
func maxAbsDiff(t *testing.T, a, b *tensor.Matrix) float64 {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// offsOf computes the ragged batch layout of a sequence list.
func offsOf(batch [][]int) ([][]int, []int) {
	offs := make([]int, len(batch)+1)
	for i, ids := range batch {
		offs[i+1] = offs[i] + len(ids)
	}
	return batch, offs
}

// TestQuantizePerLayerParity diffs the quantized forward stack against the
// float one layer by layer: both paths get the *same* float input per
// layer, so each bound localizes that one layer's quantization error
// instead of compounding the stack. The bounds are ~2x the empirically
// observed error at this scale (deterministic: fixed seeds, exact forward
// arithmetic) — tight enough that a kernel or layout bug, which produces
// O(1) garbage, can never hide inside them.
func TestQuantizePerLayerParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, layers := range []int{1, 2} {
		m := batchTestModel(t, layers, 64)
		q, err := Quantize(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, B := range []int{1, 3, 16} {
			seqs, offs := offsOf(raggedIDs(rng, B, 1, 64, m.Cfg.Vocab))

			// Embeddings are carried in float: bit-exact.
			x := tensor.New(offs[B], m.Cfg.D)
			m.Emb.ForwardBatchInto(x, seqs)
			// Feed the same embedding through the quantized tables.
			qx := tensor.New(offs[B], m.Cfg.D)
			q.EmbedBatchInto(qx, seqs)
			if d := maxAbsDiff(t, x, qx); d != 0 {
				t.Errorf("layers=%d B=%d: embedding diff %g, want bit-exact", layers, B, d)
			}

			// Each encoder block, on the float path's layer input.
			for l := 0; l < layers; l++ {
				want := m.Blocks[l].InferBatch(x, offs)
				got := q.Blocks[l].InferBatch(x, offs)
				if d := maxAbsDiff(t, want, got); d > 0.15 {
					t.Errorf("layers=%d B=%d block %d: max abs err %g > 0.15", layers, B, l, d)
				}
				// CLS-pruned variant against the CLS rows of the full one.
				wantCLS := m.Blocks[l].InferCLS(x, offs)
				gotCLS := q.Blocks[l].InferCLS(x, offs)
				if d := maxAbsDiff(t, wantCLS, gotCLS); d > 0.15 {
					t.Errorf("layers=%d B=%d block %d CLS: max abs err %g > 0.15", layers, B, l, d)
				}
				tensor.PutMatrix(wantCLS)
				tensor.PutMatrix(gotCLS)
				tensor.PutMatrix(got)
				tensor.PutMatrix(x)
				x = want // the float activations remain the shared reference
			}
			tensor.PutMatrix(x)

			// End to end: positive-class probabilities close, labels
			// agreeing except where the float path itself is on the fence.
			pf := m.PredictBatch(seqs)
			pq := q.PredictBatch(seqs)
			for i := range pf {
				if d := math.Abs(pf[i] - pq[i]); d > 0.05 {
					t.Errorf("layers=%d B=%d seq %d: prob diff %g > 0.05 (float %g, int8 %g)",
						layers, B, i, d, pf[i], pq[i])
				}
				if (pf[i] > 0.5) != (pq[i] > 0.5) && math.Abs(pf[i]-0.5) > 0.05 {
					t.Errorf("layers=%d B=%d seq %d: label flipped on a confident prediction (float %g, int8 %g)",
						layers, B, i, pf[i], pq[i])
				}
			}
		}
	}
}

// TestQuantPredictSingleMatchesBatch pins the B=1 wrappers to the batch
// path bit-exactly, as the float backend does.
func TestQuantPredictSingleMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := batchTestModel(t, 2, 64)
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	batch := raggedIDs(rng, 5, 2, 64, m.Cfg.Vocab)
	probs := q.PredictBatch(batch)
	labels := q.PredictLabelBatch(batch)
	for i, ids := range batch {
		if p := q.Predict(ids); p != probs[i] {
			t.Errorf("seq %d: Predict %v != batch %v", i, p, probs[i])
		}
		if l := q.PredictLabel(ids); l != labels[i] {
			t.Errorf("seq %d: PredictLabel mismatch", i)
		}
	}
}

// TestQuantTruncation asserts over-long inputs truncate to MaxLen exactly
// as the float batch path does.
func TestQuantTruncation(t *testing.T) {
	m := batchTestModel(t, 1, 16)
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	long := make([]int, 40)
	long[0] = 2
	for i := 1; i < len(long); i++ {
		long[i] = 4 + i%100
	}
	short := long[:16]
	if got, want := q.Predict(long), q.Predict(short); got != want {
		t.Errorf("truncated predict %v != explicit %v", got, want)
	}
}

// TestQuantConcurrent hammers one quantized model from several goroutines
// so the race detector can see the int8 forward path is read-only — the
// serving layer shares one quantized model across replica workers.
func TestQuantConcurrent(t *testing.T) {
	m := batchTestModel(t, 2, 32)
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	batch := raggedIDs(rand.New(rand.NewSource(23)), 8, 2, 32, m.Cfg.Vocab)
	want := q.PredictBatch(batch)
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			ok := true
			for rep := 0; rep < 10; rep++ {
				got := q.PredictBatch(batch)
				for i := range got {
					if got[i] != want[i] {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Error("concurrent quantized PredictBatch diverged")
		}
	}
}

// TestBackendSurface pins the Backend metadata of both implementations.
func TestBackendSurface(t *testing.T) {
	m := batchTestModel(t, 1, 64)
	var b Backend = m
	if b.BackendName() != BackendFloat64 || b.VocabSize() != m.Cfg.Vocab || b.MaxSeqLen() != 64 {
		t.Errorf("float backend surface: %s/%d/%d", b.BackendName(), b.VocabSize(), b.MaxSeqLen())
	}
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	b = q
	if b.BackendName() != BackendInt8 || b.VocabSize() != m.Cfg.Vocab || b.MaxSeqLen() != 64 {
		t.Errorf("int8 backend surface: %s/%d/%d", b.BackendName(), b.VocabSize(), b.MaxSeqLen())
	}
}

// BenchmarkPredictBatchQuant measures the same 16-snippet workload as
// BenchmarkPredictBatch through the int8 backend; the acceptance target is
// ≥1.5x the float throughput (see BENCH_QUANT.json).
func BenchmarkPredictBatchQuant(b *testing.B) {
	m, batch := benchBatch(b)
	q, err := Quantize(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PredictBatch(batch)
	}
}
