package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSpeedupTable(t *testing.T) {
	p := testPipeline(t)
	tab := p.RunSpeedup()
	if len(tab.Rows) != len(speedupWidths) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if r.Workers != speedupWidths[i] {
			t.Errorf("row %d workers = %d", i, r.Workers)
		}
		if r.Seconds <= 0 || r.Speedup <= 0 {
			t.Errorf("row %d has non-positive timing: %+v", i, r)
		}
		// The determinism contract: every width optimizes the identical
		// objective (dropout off), so final losses agree across widths.
		if d := math.Abs(r.TrainLoss - tab.Rows[0].TrainLoss); d > 1e-9 {
			t.Errorf("workers=%d train loss drifts %.3g from sequential", r.Workers, d)
		}
		if d := math.Abs(r.ValidLoss - tab.Rows[0].ValidLoss); d > 1e-9 {
			t.Errorf("workers=%d valid loss drifts %.3g from sequential", r.Workers, d)
		}
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Speedup", "workers", "speedup", "train loss"} {
		if !strings.Contains(out, want) {
			t.Errorf("print output missing %q:\n%s", want, out)
		}
	}
}
