package tensor

import (
	"fmt"
	"math"
	"sync"
)

// Int8 quantized kernels. The serving stack quantizes weight matrices once
// (per output channel, symmetric absmax — see internal/quant) and
// activations on the fly (per row, same scheme), then replaces the float64
// matmul with an int8×int8→int32 product that is dequantized through
// float32 scale products. The layout is chosen for the dot-product kernel:
// the right-hand operand is stored transposed (one output channel per row),
// so both operands stream contiguously and per-channel scales attach to
// rows on both sides.
//
// Accumulation is exact: |a|,|b| ≤ 127, so int32 holds any inner dimension
// below ~133k without overflow — far beyond this repo's model shapes.

// Int8Matrix is a dense row-major int8 matrix with one float32
// dequantization scale per row. A value v at (i, j) represents the real
// number float64(v) * float64(Scales[i]).
type Int8Matrix struct {
	Rows, Cols int
	Data       []int8
	Scales     []float32
}

// NewInt8 allocates a zeroed rows×cols int8 matrix with unit scales.
func NewInt8(rows, cols int) *Int8Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	m := &Int8Matrix{Rows: rows, Cols: cols, Data: make([]int8, rows*cols), Scales: make([]float32, rows)}
	for i := range m.Scales {
		m.Scales[i] = 1
	}
	return m
}

// Row returns a view of row i.
func (m *Int8Matrix) Row(i int) []int8 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// f64AbsMaxKernel and f64QuantRowKernel, when non-nil, are the asm
// activation-quantization kernels (int8_amd64.go), covering the 4-aligned
// prefix of a row; scalar code finishes tails. Both are bit-identical to
// the scalar path on finite inputs.
var (
	f64AbsMaxKernel   func(p *float64, n4 int) float64
	f64QuantRowKernel func(src *float64, dst *int8, inv float64, n4 int)
)

// QuantizeRowsInto quantizes each row of src into dst with symmetric absmax
// scales: scale_i = max_j |src[i][j]| / 127, q = round(v / scale_i). An
// all-zero row gets scale 1 so dequantization never divides by zero. dst
// must match src's shape; it is fully assigned.
func QuantizeRowsInto(dst *Int8Matrix, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: QuantizeRowsInto shape %dx%d vs %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	maxKern, quantKern := f64AbsMaxKernel, f64QuantRowKernel
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		n := len(row)
		n4 := n &^ 3
		amax := 0.0
		j := 0
		if maxKern != nil && n4 > 0 {
			amax = maxKern(&row[0], n4)
			j = n4
		}
		for ; j < n; j++ {
			if a := math.Abs(row[j]); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			dst.Scales[i] = 1
			clear(dst.Row(i))
			continue
		}
		scale := amax / 127
		dst.Scales[i] = float32(scale)
		inv := 1 / scale
		q := dst.Row(i)[:n]
		j = 0
		if quantKern != nil && n4 > 0 {
			quantKern(&row[0], &q[0], inv, n4)
			j = n4
		}
		for ; j < n; j++ {
			q[j] = int8(math.Round(row[j] * inv))
		}
	}
}

// int8RowKernel, when non-nil, computes one activation row against every
// output channel of b in place of the portable scalar path. It is installed
// once at init by platform code (int8_amd64.go wires an AVX2
// VPMOVSXBW/VPMADDWD kernel when the CPU supports it) and produces results
// bit-identical to the scalar kernel: int32 accumulation is associative, so
// vector-lane reassociation is exact.
var int8RowKernel func(o []float64, arow []int8, s float32, b *Int8Matrix, K, N int)

// The scalar kernel register-blocks 2 activation rows × 4 output channels: six
// int8 loads feed eight multiply-accumulates, the activation rows are read
// once per channel block instead of once per channel, and the eight
// independent accumulators hide integer add latency that a single serial
// accumulator would expose. Slices are re-cut to a common length so the
// compiler drops the inner-loop bounds checks.

// MatMulInt8BTInto computes the dequantized product out = a·bᵀ where a is
// M×K (activations, per-row scales) and b is N×K (weights stored
// transposed, one output channel per row with its per-channel scale). The
// inner product accumulates in int32 and is dequantized with the float32
// scale product, then widened into the float64 out (M×N), which is fully
// assigned. Rows split across the worker pool above the parallel threshold.
func MatMulInt8BTInto(out *Matrix, a, b *Int8Matrix) {
	int8MatMulEpilogue(out, a, b, nil, false)
}

// MatMulInt8BTFusedInto is MatMulInt8BTInto with the serving epilogue
// folded into the output loop: out = act(dequant(a·bᵀ) + bias), applied per
// row while it is still cache-hot instead of as separate full-matrix bias
// and activation sweeps. bias may be nil; relu stores max(v, +0) with the
// same !(v > 0) convention as the float kernels. The result is bit-exact
// against MatMulInt8BTInto followed by unfused bias-add and ReLU passes
// (the epilogue performs the identical per-element operations in the
// identical order).
func MatMulInt8BTFusedInto(out *Matrix, a, b *Int8Matrix, bias []float64, relu bool) {
	int8MatMulEpilogue(out, a, b, bias, relu)
}

func int8MatMulEpilogue(out *Matrix, a, b *Int8Matrix, bias []float64, relu bool) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulInt8BTInto shape %dx%d = %dx%d · (%dx%d)ᵀ",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias != nil && len(bias) < b.Rows {
		panic("tensor: MatMulInt8BTInto bias shorter than output width")
	}
	K, N := a.Cols, b.Rows
	// The closure is only built on the parallel branch: ParallelFor leaks
	// its func into the worker channel, so an unconditionally constructed
	// closure heap-allocates even for the small serial matmuls that dominate
	// per-sequence inference.
	if a.Rows*N >= parallelThreshold {
		ParallelFor(a.Rows, func(lo, hi int) {
			int8MatMulRows(out, a, b, bias, K, N, relu, lo, hi)
		})
	} else {
		int8MatMulRows(out, a, b, bias, K, N, relu, 0, a.Rows)
	}
}

func int8MatMulRows(out *Matrix, a, b *Int8Matrix, bias []float64, K, N int, relu bool, lo, hi int) {
	if kern := int8RowKernel; kern != nil { // non-nil when the platform installed a SIMD kernel
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			kern(orow, a.Row(i), a.Scales[i], b, K, N)
			int8BiasReLU(orow, bias, relu)
		}
		return
	}
	i := lo
	for ; i+2 <= hi; i += 2 {
		int8DotRows2(out.Row(i), out.Row(i+1), a.Row(i), a.Row(i+1),
			a.Scales[i], a.Scales[i+1], b, K, N)
		int8BiasReLU(out.Row(i), bias, relu)
		int8BiasReLU(out.Row(i+1), bias, relu)
	}
	for ; i < hi; i++ {
		int8DotRows1(out.Row(i), a.Row(i), a.Scales[i], b, K, N)
		int8BiasReLU(out.Row(i), bias, relu)
	}
}

// int8BiasReLU applies the fused serving epilogue to one dequantized output
// row, in the same per-element order as the unfused passes.
func int8BiasReLU(orow, bias []float64, relu bool) {
	if bias != nil {
		for j, bv := range bias[:len(orow)] {
			orow[j] += bv
		}
	}
	if relu {
		for j, v := range orow {
			if !(v > 0) { // match the float kernels: -0 and NaN → +0
				orow[j] = 0
			}
		}
	}
}

// int8DotRows2 computes two output rows against every channel of b with 2×4
// register blocking.
func int8DotRows2(o0, o1 []float64, a0, a1 []int8, s0, s1 float32, b *Int8Matrix, K, N int) {
	a0 = a0[:K]
	a1 = a1[:K]
	j := 0
	for ; j+4 <= N; j += 4 {
		b0 := b.Row(j)[:K]
		b1 := b.Row(j + 1)[:K]
		b2 := b.Row(j + 2)[:K]
		b3 := b.Row(j + 3)[:K]
		var p0, p1, p2, p3, q0, q1, q2, q3 int32
		for k := 0; k < K; k++ {
			u := int32(a0[k])
			v := int32(a1[k])
			w0 := int32(b0[k])
			w1 := int32(b1[k])
			w2 := int32(b2[k])
			w3 := int32(b3[k])
			p0 += u * w0
			p1 += u * w1
			p2 += u * w2
			p3 += u * w3
			q0 += v * w0
			q1 += v * w1
			q2 += v * w2
			q3 += v * w3
		}
		o0[j] = float64(float32(p0) * s0 * b.Scales[j])
		o0[j+1] = float64(float32(p1) * s0 * b.Scales[j+1])
		o0[j+2] = float64(float32(p2) * s0 * b.Scales[j+2])
		o0[j+3] = float64(float32(p3) * s0 * b.Scales[j+3])
		o1[j] = float64(float32(q0) * s1 * b.Scales[j])
		o1[j+1] = float64(float32(q1) * s1 * b.Scales[j+1])
		o1[j+2] = float64(float32(q2) * s1 * b.Scales[j+2])
		o1[j+3] = float64(float32(q3) * s1 * b.Scales[j+3])
	}
	for ; j < N; j++ {
		brow := b.Row(j)[:K]
		var p, q int32
		for k := 0; k < K; k++ {
			w := int32(brow[k])
			p += int32(a0[k]) * w
			q += int32(a1[k]) * w
		}
		o0[j] = float64(float32(p) * s0 * b.Scales[j])
		o1[j] = float64(float32(q) * s1 * b.Scales[j])
	}
}

// int8DotRows1 is the single-row tail of the 2×4 blocking.
func int8DotRows1(o []float64, arow []int8, s float32, b *Int8Matrix, K, N int) {
	arow = arow[:K]
	j := 0
	for ; j+4 <= N; j += 4 {
		b0 := b.Row(j)[:K]
		b1 := b.Row(j + 1)[:K]
		b2 := b.Row(j + 2)[:K]
		b3 := b.Row(j + 3)[:K]
		var p0, p1, p2, p3 int32
		for k := 0; k < K; k++ {
			u := int32(arow[k])
			p0 += u * int32(b0[k])
			p1 += u * int32(b1[k])
			p2 += u * int32(b2[k])
			p3 += u * int32(b3[k])
		}
		o[j] = float64(float32(p0) * s * b.Scales[j])
		o[j+1] = float64(float32(p1) * s * b.Scales[j+1])
		o[j+2] = float64(float32(p2) * s * b.Scales[j+2])
		o[j+3] = float64(float32(p3) * s * b.Scales[j+3])
	}
	for ; j < N; j++ {
		brow := b.Row(j)[:K]
		var p int32
		for k := 0; k < K; k++ {
			p += int32(arow[k]) * int32(brow[k])
		}
		o[j] = float64(float32(p) * s * b.Scales[j])
	}
}

// ---------------------------------------------------------------------------
// int8 buffer pool (activation quantization scratch)
// ---------------------------------------------------------------------------

var int8Pool sync.Pool

// GetInt8Matrix returns an uninitialized rows×cols Int8Matrix backed by
// pooled storage, for callers that fully assign it (QuantizeRowsInto).
// Release with PutInt8Matrix.
func GetInt8Matrix(rows, cols int) *Int8Matrix {
	n := rows * cols
	m, _ := int8Pool.Get().(*Int8Matrix)
	if m == nil || cap(m.Data) < n || cap(m.Scales) < rows {
		m = &Int8Matrix{Data: make([]int8, n), Scales: make([]float32, rows)}
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
	m.Scales = m.Scales[:rows]
	return m
}

// PutInt8Matrix recycles a matrix obtained from GetInt8Matrix. The matrix
// must not be used afterwards.
func PutInt8Matrix(m *Int8Matrix) {
	if cap(m.Data) < minPooledCap {
		return
	}
	int8Pool.Put(m)
}
