package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refAttnScores is the naive per-head reference (plain mul-add dots).
func refAttnScores(q, k *Matrix, heads int, scale float64) *Matrix {
	dh := q.Cols / heads
	out := New(heads*q.Rows, k.Rows)
	for h := 0; h < heads; h++ {
		for i := 0; i < q.Rows; i++ {
			for j := 0; j < k.Rows; j++ {
				s := 0.0
				for d := 0; d < dh; d++ {
					s += q.At(i, h*dh+d) * k.At(j, h*dh+d)
				}
				out.Set(h*q.Rows+i, j, s*scale)
			}
		}
	}
	return out
}

// refAttnMix is the naive per-head value mix reference.
func refAttnMix(attn, v *Matrix, heads int) *Matrix {
	dh := v.Cols / heads
	Tq := attn.Rows / heads
	out := New(Tq, v.Cols)
	for h := 0; h < heads; h++ {
		for i := 0; i < Tq; i++ {
			for j := 0; j < v.Rows; j++ {
				a := attn.At(h*Tq+i, j)
				for d := 0; d < dh; d++ {
					out.Data[i*v.Cols+h*dh+d] += a * v.At(j, h*dh+d)
				}
			}
		}
	}
	return out
}

var attnShapes = []struct{ Tq, Tk, D, H int }{
	{1, 1, 4, 1}, {1, 1, 8, 2}, {3, 3, 8, 2}, {5, 7, 12, 3},
	{2, 9, 32, 4}, {17, 17, 32, 8}, {64, 64, 32, 4}, {4, 4, 6, 6},
}

func TestAttnScoresIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range attnShapes {
		q := New(sh.Tq, sh.D).Randn(rng, 1)
		k := New(sh.Tk, sh.D).Randn(rng, 1)
		scale := 1 / math.Sqrt(float64(sh.D/sh.H))
		got := GetMatrixDirty(sh.H*sh.Tq, sh.Tk)
		AttnScoresInto(got, q, k, sh.H, scale)
		assertClose(t, got, refAttnScores(q, k, sh.H, scale), 1e-12, "AttnScoresInto")
		PutMatrix(got)
	}
}

func TestAttnMixIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range attnShapes {
		attn := New(sh.H*sh.Tq, sh.Tk).Randn(rng, 1)
		v := New(sh.Tk, sh.D).Randn(rng, 1)
		got := GetMatrixDirty(sh.Tq, sh.D)
		AttnMixInto(got, attn, v, sh.H)
		assertClose(t, got, refAttnMix(attn, v, sh.H), 1e-12, "AttnMixInto")
		PutMatrix(got)
	}
}

// TestAttnHelpersScalarSIMDAgree extends the float kernel bit-identity
// contract to the strided attention entry points.
func TestAttnHelpersScalarSIMDAgree(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels installed on this platform")
	}
	defer SetSIMD(true)
	rng := rand.New(rand.NewSource(14))
	for _, sh := range attnShapes {
		q := New(sh.Tq, sh.D).Randn(rng, 1)
		k := New(sh.Tk, sh.D).Randn(rng, 1)
		attn := New(sh.H*sh.Tq, sh.Tk).Randn(rng, 1)
		v := New(sh.Tk, sh.D).Randn(rng, 1)
		scale := 1 / math.Sqrt(float64(sh.D/sh.H))

		s1 := New(sh.H*sh.Tq, sh.Tk)
		m1 := New(sh.Tq, sh.D)
		SetSIMD(true)
		AttnScoresInto(s1, q, k, sh.H, scale)
		AttnMixInto(m1, attn, v, sh.H)

		s2 := New(sh.H*sh.Tq, sh.Tk)
		m2 := New(sh.Tq, sh.D)
		SetSIMD(false)
		AttnScoresInto(s2, q, k, sh.H, scale)
		AttnMixInto(m2, attn, v, sh.H)
		SetSIMD(true)

		for i := range s1.Data {
			if s1.Data[i] != s2.Data[i] {
				t.Fatalf("scores %+v: element %d: simd %v != scalar %v", sh, i, s1.Data[i], s2.Data[i])
			}
		}
		for i := range m1.Data {
			if m1.Data[i] != m2.Data[i] {
				t.Fatalf("mix %+v: element %d: simd %v != scalar %v", sh, i, m1.Data[i], m2.Data[i])
			}
		}
	}
}

// TestAttnHelpersDegenerate pins the edge geometries: empty sequences and
// single-token heads must neither panic nor leave dirty output.
func TestAttnHelpersDegenerate(t *testing.T) {
	// Tq=1, Tk=1, one head: a 1×1 score block per head.
	q := FromSlice(1, 2, []float64{3, 4})
	k := FromSlice(1, 2, []float64{5, 6})
	s := GetMatrixDirty(1, 1)
	AttnScoresInto(s, q, k, 1, 0.5)
	if want := (3*5 + 4*6) * 0.5; s.At(0, 0) != want {
		t.Fatalf("1-token score = %v, want %v", s.At(0, 0), want)
	}
	PutMatrix(s)

	// Dirty output fully overwritten by the mix.
	attn := FromSlice(1, 1, []float64{1})
	v := FromSlice(1, 2, []float64{7, 8})
	out := GetMatrixDirty(1, 2)
	out.Data[0], out.Data[1] = 99, 99
	AttnMixInto(out, attn, v, 1)
	if out.At(0, 0) != 7 || out.At(0, 1) != 8 {
		t.Fatalf("1-token mix = %v", out.Data)
	}
	PutMatrix(out)
}
