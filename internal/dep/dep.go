// Package dep implements the data-dependence analysis that underlies both
// the corpus ground-truth labeler and the S2S compiler baselines: loop
// header normalization, read/write set extraction, scalar dependence
// classification (private / reduction / carried), array dependence testing
// (ZIV / SIV / GCD on affine subscripts), function side-effect analysis, and
// workload-balance heuristics.
package dep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pragformer/internal/cast"
	"pragformer/internal/pragma"
)

// LoopHeader is a normalized `for (v = L; v < U; v += S)` header.
type LoopHeader struct {
	Var        string
	Lower      Affine
	Upper      Affine
	Step       int64
	Inclusive  bool // `<=` bound
	DeclInline bool // loop variable declared in the init clause
	OK         bool
}

// TripCount returns the constant iteration count, or -1 when unknown.
func (h LoopHeader) TripCount() int64 {
	if !h.OK || !h.Lower.constOnly() || !h.Upper.constOnly() || h.Step == 0 {
		return -1
	}
	lo, hi := h.Lower.Const, h.Upper.Const
	if h.Step > 0 {
		if h.Inclusive {
			hi++
		}
		if hi <= lo {
			return 0
		}
		return (hi - lo + h.Step - 1) / h.Step
	}
	if h.Inclusive {
		hi--
	}
	if lo <= hi {
		return 0
	}
	return (lo - hi + (-h.Step) - 1) / (-h.Step)
}

// Analysis is the full result of analyzing one for-loop.
type Analysis struct {
	Header LoopHeader

	// Parallelizable is true when no loop-carried dependence, side effect,
	// or analysis failure prevents a `parallel for` directive.
	Parallelizable bool

	// Private lists scalars needing a private clause (assigned before use
	// in each iteration, declared outside the loop). Inner loop variables
	// declared outside land here, matching the paper's private(j) examples.
	Private []string
	// FirstPrivate lists scalars read before assignment but then
	// overwritten; kept separate for directive generation fidelity.
	FirstPrivate []string
	// Reductions lists recognized reduction idioms.
	Reductions []pragma.Reduction
	// Unbalanced is set when the body's cost is iteration-dependent
	// (guarded heavy work), suggesting schedule(dynamic) per the paper §1.1.
	Unbalanced bool

	// HasIO is true when the body performs I/O or other pinned-order calls.
	HasIO bool
	// UnknownCalls lists called functions whose bodies were unavailable;
	// analysis treats them as having arbitrary side effects.
	UnknownCalls []string
	// Reasons explains (for humans and for tests) why the loop was or was
	// not parallelizable.
	Reasons []string

	// Witnesses carries structured race evidence when dependence testing
	// refutes the loop: the dependence kind, the two access sites anchored
	// to the canonical snippet text, and the direction/distance vector.
	Witnesses []Witness
	// Converted lists arrays whose refuting dependence was rescued by
	// privatization or reduction recognition (only under Options enabling
	// those conversions).
	Converted []string
	// NestDepth is the number of analyzed nest levels, outer loop included.
	NestDepth int
}

// Options selects the optional conversion passes that run after a dependence
// refutation. The zero value reproduces the plain dependence-test verdicts,
// which is what the corpus labeler and the S2S baselines rely on.
type Options struct {
	// ArrayPrivatization lifts per-iteration scratch arrays into private
	// clauses instead of refuting on their output dependence.
	ArrayPrivatization bool
	// ArrayReductions lifts consistent-operator array accumulations
	// (histograms, in-place updates) into reduction clauses.
	ArrayReductions bool
}

// Reason records a single explanation string.
func (a *Analysis) reason(format string, args ...any) {
	a.Reasons = append(a.Reasons, fmt.Sprintf(format, args...))
}

// Directive builds the OpenMP directive this analysis supports, or nil when
// the loop is not parallelizable.
func (a *Analysis) Directive() *pragma.Directive {
	if !a.Parallelizable {
		return nil
	}
	d := &pragma.Directive{ParallelFor: true}
	d.Private = append(d.Private, a.Private...)
	d.FirstPrivate = append(d.FirstPrivate, a.FirstPrivate...)
	d.Reductions = append(d.Reductions, a.Reductions...)
	if a.Unbalanced {
		d.Schedule = pragma.ScheduleDynamic
		d.Chunk = 4
	}
	return d
}

// pureFuncs never have side effects: math library calls.
var pureFuncs = map[string]bool{
	"sqrt": true, "sqrtf": true, "fabs": true, "fabsf": true, "abs": true,
	"sin": true, "cos": true, "tan": true, "asin": true, "acos": true,
	"atan": true, "atan2": true, "exp": true, "log": true, "log2": true,
	"log10": true, "pow": true, "floor": true, "ceil": true, "fmod": true,
	"fmax": true, "fmin": true, "hypot": true, "cbrt": true, "round": true,
	"POLYBENCH_LOOP_BOUND": true, // polybench bound macro parsed as a call
	"SCALAR_VAL":           true,
}

// ioFuncs pin iteration order or mutate global state; calling one forbids
// parallelization.
var ioFuncs = map[string]bool{
	"printf": true, "fprintf": true, "scanf": true, "fscanf": true,
	"sprintf": true, "snprintf": true, "puts": true, "putchar": true,
	"getchar": true, "fgets": true, "fputs": true, "fopen": true,
	"fclose": true, "fread": true, "fwrite": true, "fflush": true,
	"malloc": true, "calloc": true, "realloc": true, "free": true,
	"rand": true, "srand": true, "exit": true, "abort": true,
	"strcat": true, "strcpy": true, "strncpy": true, "gets": true,
}

// IsPureFunc reports whether name is a known side-effect-free function.
func IsPureFunc(name string) bool { return pureFuncs[name] }

// IsIOFunc reports whether name performs I/O or global mutation.
func IsIOFunc(name string) bool { return ioFuncs[name] }

// access records one scalar or array access inside a loop body.
type access struct {
	name  string
	write bool
	// plainWrite marks `x = ...` (not `x op= ...`) — used for the private
	// pattern. Meaningful on write accesses only.
	plainWrite bool
	// accumOp is the reduction operator when this write is a recognized
	// accumulation such as `s += e` or `s = fmax(s, e)`.
	accumOp string
	subs    []cast.Expr // array subscripts, outermost first; nil = scalar
	// cond is true when the access happens under a condition (if/ternary).
	cond  bool
	order int // DFS visit order
	// node anchors the access to its AST expression for witness positions
	// (nil for synthetic records such as inner-loop header writes).
	node cast.Expr
	// chain is the stack of enclosing inner-loop variables at record time,
	// outermost first.
	chain []string
}

// AnalyzeLoop analyzes one for-loop with conversions disabled; it keeps the
// plain dependence-test verdicts the corpus labeler and S2S baselines use.
// funcs maps function names to their definitions when bodies are available
// (the corpus records include called function implementations, per the paper
// §3.1); callers with no bodies pass nil and unknown calls are treated
// conservatively.
func AnalyzeLoop(loop *cast.For, funcs map[string]*cast.FuncDef) *Analysis {
	return AnalyzeLoopOpts(loop, funcs, Options{})
}

// AnalyzeLoopOpts analyzes one for-loop under the given conversion options.
func AnalyzeLoopOpts(loop *cast.For, funcs map[string]*cast.FuncDef, opts Options) *Analysis {
	a := &Analysis{}
	a.Header = ParseHeader(loop)
	if !a.Header.OK {
		a.reason("loop header is not a normalized affine for-loop")
		return a
	}

	ctx := &collector{loopVar: a.Header.Var, funcs: funcs, declared: map[string]bool{}}
	if a.Header.DeclInline {
		ctx.declared[a.Header.Var] = true
	}
	ctx.stmt(loop.Body)

	if ctx.hasBreak {
		a.reason("loop contains break/early exit")
		return a
	}
	if ctx.badWrite {
		a.reason("write through pointer or unanalyzable lvalue")
		return a
	}
	a.HasIO = ctx.hasIO
	a.UnknownCalls = ctx.unknownCalls
	a.Unbalanced = ctx.unbalanced
	if ctx.hasIO {
		a.reason("body performs I/O or order-pinned library calls")
		return a
	}
	if len(ctx.unknownCalls) > 0 {
		a.reason("calls functions with unknown bodies: %s", strings.Join(ctx.unknownCalls, ", "))
		return a
	}
	if ctx.impureCall != "" {
		a.reason("calls function %s with global side effects", ctx.impureCall)
		return a
	}

	// The nest iteration space covers the analyzed loop plus every
	// normalized inner loop; all dependence math below runs over it.
	ns := buildNest(a.Header, ctx)
	a.NestDepth = len(ns.vars)

	// Scalar classification.
	okScalars := a.classifyScalars(ctx)
	if !okScalars {
		a.fillWitnessPositions(loop)
		return a
	}
	// Array dependence tests over the nest, with privatization / reduction
	// rescue passes when enabled.
	if !a.testArraysNest(ctx, ns, opts) {
		a.fillWitnessPositions(loop)
		return a
	}

	sort.Strings(a.Private)
	sort.Slice(a.Reductions, func(i, j int) bool { return a.Reductions[i].Vars[0] < a.Reductions[j].Vars[0] })
	a.Parallelizable = true
	a.reason("no loop-carried dependences detected")
	return a
}

// ParseHeader normalizes a for-loop header.
func ParseHeader(loop *cast.For) LoopHeader {
	h := LoopHeader{}
	// Init: `v = expr` or `type v = expr`.
	switch init := loop.Init.(type) {
	case *cast.ExprStmt:
		asg, ok := init.X.(*cast.Assign)
		if !ok || asg.Op != "=" {
			return h
		}
		id, ok := asg.L.(*cast.Ident)
		if !ok {
			return h
		}
		h.Var = id.Name
		h.Lower = ToAffine(asg.R, h.Var)
	case *cast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return h
		}
		h.Var = init.Decls[0].Name
		h.Lower = ToAffine(init.Decls[0].Init, h.Var)
		h.DeclInline = true
	default:
		return h
	}
	if !h.Lower.OK || h.Lower.Coef != 0 {
		return LoopHeader{}
	}

	// Cond: any of `v < expr`, `v <= expr`, `v > expr`, `v >= expr` and the
	// mirrored forms with the variable on the right. The bound side is the
	// non-variable side; inclusivity follows the presence of '='.
	cond, ok := loop.Cond.(*cast.BinaryOp)
	if !ok {
		return LoopHeader{}
	}
	var boundExpr cast.Expr
	switch cond.Op {
	case "<", "<=", ">", ">=":
		if id, ok := cond.L.(*cast.Ident); ok && id.Name == h.Var {
			boundExpr = cond.R
		} else if id, ok := cond.R.(*cast.Ident); ok && id.Name == h.Var {
			boundExpr = cond.L
		} else {
			return LoopHeader{}
		}
		h.Inclusive = cond.Op == "<=" || cond.Op == ">="
	default:
		return LoopHeader{}
	}
	h.Upper = ToAffine(boundExpr, h.Var)
	if !h.Upper.OK || h.Upper.Coef != 0 {
		return LoopHeader{}
	}

	// Post: v++, ++v, v--, v += c, v -= c, v = v + c.
	switch post := loop.Post.(type) {
	case *cast.UnaryOp:
		id, ok := post.X.(*cast.Ident)
		if !ok || id.Name != h.Var {
			return LoopHeader{}
		}
		switch post.Op {
		case "++":
			h.Step = 1
		case "--":
			h.Step = -1
		default:
			return LoopHeader{}
		}
	case *cast.Assign:
		id, ok := post.L.(*cast.Ident)
		if !ok || id.Name != h.Var {
			return LoopHeader{}
		}
		switch post.Op {
		case "+=", "-=":
			lit, ok := post.R.(*cast.IntLit)
			if !ok {
				return LoopHeader{}
			}
			n, err := strconv.ParseInt(lit.Text, 0, 64)
			if err != nil || n == 0 {
				return LoopHeader{}
			}
			if post.Op == "-=" {
				n = -n
			}
			h.Step = n
		case "=":
			// v = v + c or v = c + v
			bin, ok := post.R.(*cast.BinaryOp)
			if !ok || (bin.Op != "+" && bin.Op != "-") {
				return LoopHeader{}
			}
			aff := ToAffine(post.R, h.Var)
			if !aff.OK || aff.Coef != 1 || len(aff.SymCoefs) != 0 {
				return LoopHeader{}
			}
			if aff.Const == 0 {
				return LoopHeader{}
			}
			h.Step = aff.Const
		default:
			return LoopHeader{}
		}
	default:
		return LoopHeader{}
	}
	h.OK = true
	return h
}
