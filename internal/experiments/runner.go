package experiments

import (
	"fmt"
	"io"
)

// Experiment names accepted by Run, ordered so the headline comparisons
// (which reuse the Text-representation directive model) complete before the
// representation study trains three further models and the ablations six
// more — partial runs still cover the paper's main tables.
var Names = []string{
	"table3", "table4", "figure3", "table5", "table6", "table7",
	"table8", "figure7", "table9", "table10", "table11", "table12",
	"figures456", "ablation-pretrain", "ablation-heads", "ablation-seqlen",
	"speedup", "quant", "agreement",
}

// Run executes one named experiment and prints it to w. Unknown names
// return an error listing the valid choices.
func (p *Pipeline) Run(name string, w io.Writer) error {
	switch name {
	case "table3":
		p.RunTable3().Print(w)
	case "table4":
		p.RunTable4().Print(w)
	case "figure3":
		p.RunFigure3().Print(w)
	case "table5":
		p.RunTable5().Print(w)
	case "table6":
		p.RunTable6().Print(w)
	case "table7":
		p.RunTable7().Print(w)
	case "figures456":
		p.RunFigures456().Print(w)
	case "table8":
		p.RunTable8().Print(w)
	case "figure7":
		p.RunFigure7().Print(w)
	case "table9":
		p.RunTable9().Print(w)
	case "table10":
		p.RunTable10().Print(w)
	case "table11":
		p.RunTable11().Print(w)
	case "table12":
		PrintExamples(w, p.RunTable12Figure8())
	case "ablation-pretrain":
		p.RunAblationPretraining().Print(w)
	case "ablation-heads":
		p.RunAblationHeads().Print(w)
	case "ablation-seqlen":
		p.RunAblationSeqLen().Print(w)
	case "speedup":
		p.RunSpeedup().Print(w)
	case "quant":
		p.RunQuant().Print(w)
	case "agreement":
		p.RunAgreement(p.Cfg.ScanTree).Print(w)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (valid: %v)", name, Names)
	}
	fmt.Fprintln(w)
	return nil
}

// RunAll executes every experiment in paper order.
func (p *Pipeline) RunAll(w io.Writer) error {
	for _, name := range Names {
		if err := p.Run(name, w); err != nil {
			return err
		}
	}
	return nil
}
