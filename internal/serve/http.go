package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"pragformer/internal/dep"
	"pragformer/internal/obs"
	"pragformer/internal/tokenize"
)

// HTTP JSON API over the engine:
//
//	POST /predict {"code": "..."} | {"codes": [...]} | {"ids": [[...]]}
//	POST /suggest {"code": "..."} | {"codes": [...]}
//	POST /scan    {"files": [{"path": "a.c", "source": "..."}], "format": "json"|"sarif"}
//	POST /reload  (empty body — hot-swaps models from the configured source)
//	GET  /healthz (liveness: the process is up and serving)
//	GET  /readyz  (readiness: 503 while draining or mid-reload)
//	GET  /statz   (admission signals: queue depth, in-flight, hit rates)
//
// Multi-item requests fan out concurrently into the engine, so one HTTP
// batch coalesces into batched forwards the same way concurrent clients
// do. Per-item failures (unlexable snippets) are reported inline; the
// request itself fails only on malformed JSON or transport-level problems
// — or saturation: when every item of a request was shed (Config.Shed),
// the response is 429 with a Retry-After header instead of a result list.

// predictRequest is the /predict body. Exactly one field population makes
// sense: code, codes, or ids.
type predictRequest struct {
	Code  string   `json:"code,omitempty"`
	Codes []string `json:"codes,omitempty"`
	IDs   [][]int  `json:"ids,omitempty"`
}

// predictResult is one /predict outcome.
type predictResult struct {
	Probability float64 `json:"probability"`
	Parallelize bool    `json:"parallelize"`
	Error       string  `json:"error,omitempty"`
}

// suggestRequest is the /suggest body.
type suggestRequest struct {
	Code  string   `json:"code,omitempty"`
	Codes []string `json:"codes,omitempty"`
}

// suggestResult is one /suggest outcome.
type suggestResult struct {
	Parallelize bool    `json:"parallelize"`
	Probability float64 `json:"probability"`
	Directive   string  `json:"directive,omitempty"`
	// Tier grades the corroboration evidence; "disagree" marks
	// model-positive / analysis-negative verdicts.
	Tier    string   `json:"tier,omitempty"`
	Witness []string `json:"witness,omitempty"`
	// Races carries the structured race witnesses when the dependence
	// analysis refuted the loop; Converted lists arrays it rescued via
	// privatization or reduction recognition.
	Races     []dep.Witness `json:"races,omitempty"`
	Converted []string      `json:"converted,omitempty"`
	// S2S carries the per-compiler corroboration trail.
	S2S []suggestS2S `json:"s2s,omitempty"`
	// Attributions carries the LIME token attribution computed for
	// disagreeing verdicts, in token order.
	Attributions []suggestAttribution `json:"attributions,omitempty"`
	Notes        []string             `json:"notes,omitempty"`
	Error        string               `json:"error,omitempty"`
}

// suggestS2S is one S2S compiler's verdict in a /suggest response.
type suggestS2S struct {
	Compiler     string `json:"compiler"`
	Compiled     bool   `json:"compiled"`
	Parallelized bool   `json:"parallelized,omitempty"`
	Detail       string `json:"detail,omitempty"`
}

// suggestAttribution is one token's LIME weight in a /suggest response.
type suggestAttribution struct {
	Index  int     `json:"index"`
	Token  string  `json:"token"`
	Weight float64 `json:"weight,omitempty"`
}

// healthzResponse is the /healthz body. Backend and Generation surface the
// compute backend and the serving model generation to probes, so a rollout
// can verify a reload actually took (generation bumped) and which numeric
// path answers traffic.
type healthzResponse struct {
	Status     string `json:"status"`
	Backend    string `json:"backend"`
	Generation uint64 `json:"generation"`
	Stats      Stats  `json:"stats"`
}

// Handler returns the engine's HTTP API. The request-serving POST routes
// run under the obs middleware: duration histograms per path, trace
// minting/propagation via X-PF-Trace, and X-PF-Deadline-Ms enforcement
// (an expired budget is shed with 504 before any work).
func (e *Engine) Handler() http.Handler {
	mw := obs.NewMiddleware(e.reg, e.cfg.Trace, e.cfg.Logger)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", mw.Wrap("/predict", e.handlePredict))
	mux.HandleFunc("POST /suggest", mw.Wrap("/suggest", e.handleSuggest))
	mux.HandleFunc("POST /scan", mw.Wrap("/scan", e.handleScan))
	mux.HandleFunc("POST /reload", e.handleReload)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /readyz", e.handleReadyz)
	mux.HandleFunc("GET /statz", e.handleStatz)
	mux.Handle("GET /metrics", e.reg.Handler())
	return mux
}

// encode tokenizes and encodes one snippet against the currently served
// bundle.
func (e *Engine) encode(code string) ([]int, error) {
	toks, err := tokenize.Extract(code, tokenize.Text)
	if err != nil {
		return nil, err
	}
	models := e.Models()
	return models.Vocab.Encode(toks, models.EffectiveMaxLen()), nil
}

// validateIDs rejects raw id sequences the model cannot embed — this is
// the untrusted-input boundary, and an out-of-range id would panic a batch
// worker. (A reload racing an accepted request is additionally guarded by
// the engine's in-batch clamping.)
func (e *Engine) validateIDs(ids []int) error {
	if len(ids) == 0 {
		return fmt.Errorf("empty id sequence")
	}
	vocab := e.Models().Directive.VocabSize()
	for _, id := range ids {
		if id < 0 || id >= vocab {
			return fmt.Errorf("id %d out of vocabulary range [0, %d)", id, vocab)
		}
	}
	return nil
}

func (e *Engine) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	codes := req.Codes
	if req.Code != "" {
		codes = append(codes, req.Code)
	}
	results := make([]predictResult, len(codes)+len(req.IDs))
	var wg sync.WaitGroup
	var sheds atomic.Int64
	predictIDs := func(out *predictResult, ids []int) {
		defer wg.Done()
		p, err := e.Predict(r.Context(), ids)
		if err != nil {
			if errors.Is(err, ErrSaturated) {
				sheds.Add(1)
			}
			out.Error = err.Error()
			return
		}
		out.Probability = p
		out.Parallelize = p > 0.5
	}
	for i, code := range codes {
		ids, err := e.encode(code)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		wg.Add(1)
		go predictIDs(&results[i], ids)
	}
	for j, ids := range req.IDs {
		if err := e.validateIDs(ids); err != nil {
			results[len(codes)+j].Error = err.Error()
			continue
		}
		wg.Add(1)
		go predictIDs(&results[len(codes)+j], ids)
	}
	wg.Wait()
	if shedEntirely(int(sheds.Load()), len(results)) {
		shedResponse(w)
		return
	}
	resp := map[string]any{"results": results}
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		resp["trace"] = tr.Wire()
	}
	writeJSON(w, resp)
}

// shedEntirely reports a request every item of which was refused for
// saturation — the only case that turns into a whole-request 429 (mixed
// outcomes keep the inline per-item error contract).
func shedEntirely(sheds, total int) bool { return total > 0 && sheds == total }

// shedResponse is the load-shedding reply: 429 with a Retry-After hint
// sized to a couple of batching windows.
func shedResponse(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "queue saturated, retry later")
}

func (e *Engine) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req suggestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	codes := req.Codes
	if req.Code != "" {
		codes = append(codes, req.Code)
	}
	results := make([]suggestResult, len(codes))
	var wg sync.WaitGroup
	var sheds atomic.Int64
	for i, code := range codes {
		wg.Add(1)
		go func(out *suggestResult, code string) {
			defer wg.Done()
			s, err := e.Suggest(r.Context(), code)
			if err != nil {
				if errors.Is(err, ErrSaturated) {
					sheds.Add(1)
				}
				out.Error = err.Error()
				return
			}
			out.Parallelize = s.Parallelize
			out.Probability = s.Probability
			out.Tier = s.Corroboration.Tier.String()
			out.Witness = s.Corroboration.DepWitness
			out.Races = s.Corroboration.Races
			out.Converted = s.Corroboration.Converted
			for _, v := range s.Corroboration.S2S {
				out.S2S = append(out.S2S, suggestS2S{
					Compiler: v.Compiler, Compiled: v.Compiled,
					Parallelized: v.Parallelized, Detail: v.Detail})
			}
			for _, a := range s.Attributions {
				out.Attributions = append(out.Attributions,
					suggestAttribution{Index: a.Index, Token: a.Token, Weight: a.Weight})
			}
			out.Notes = s.Notes
			if s.Directive != nil {
				out.Directive = s.Directive.String()
			}
		}(&results[i], code)
	}
	wg.Wait()
	if shedEntirely(int(sheds.Load()), len(results)) {
		shedResponse(w)
		return
	}
	resp := map[string]any{"results": results}
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		resp["trace"] = tr.Wire()
	}
	writeJSON(w, resp)
}

// handleReload hot-swaps the served models from the configured source.
// Traffic keeps flowing while the new bundle loads; only the final swap is
// atomic. 409 when the server has no reload source (demo mode).
func (e *Engine) handleReload(w http.ResponseWriter, _ *http.Request) {
	if e.cfg.Source == nil {
		httpError(w, http.StatusConflict, "no reload source configured")
		return
	}
	if err := e.ReloadFromSource(); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"status": "reloaded", "reloads": e.reloads.Load()})
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := e.Stats()
	writeJSON(w, healthzResponse{Status: "ok", Backend: st.Backend, Generation: st.Generation, Stats: st})
}

// readyzResponse is the /readyz body: Ready false (with a 503) while the
// engine is draining toward shutdown or mid-reload. Liveness (/healthz)
// stays 200 the whole time — the process is fine, it just should not
// receive new traffic.
type readyzResponse struct {
	Ready      bool   `json:"ready"`
	State      string `json:"state"` // "ok" | "draining" | "reloading"
	Backend    string `json:"backend"`
	Generation uint64 `json:"generation"`
}

func (e *Engine) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := e.Stats()
	resp := readyzResponse{Ready: true, State: "ok", Backend: st.Backend, Generation: st.Generation}
	switch {
	case st.Draining:
		resp.Ready, resp.State = false, "draining"
	case st.Reloading:
		resp.Ready, resp.State = false, "reloading"
	}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// statzResponse is the /statz body — the admission signal the tier router
// polls: per-path queue depth and in-flight counts next to the monotonic
// counters, plus derived rates probes would otherwise recompute.
type statzResponse struct {
	Backend    string    `json:"backend"`
	Generation uint64    `json:"generation"`
	Draining   bool      `json:"draining"`
	Reloading  bool      `json:"reloading"`
	Reloads    uint64    `json:"reloads"`
	Predict    pathStatz `json:"predict"`
	Suggest    pathStatz `json:"suggest"`
	// Latency carries the request-duration percentiles per HTTP path —
	// the same histograms /metrics exposes, folded into the poll the tier
	// router already makes.
	Latency map[string]latencyStatz `json:"latency,omitempty"`
}

type pathStatz struct {
	Requests         uint64  `json:"requests"`
	CacheHits        uint64  `json:"cache_hits"`
	Batches          uint64  `json:"batches"`
	Items            uint64  `json:"items"`
	Sheds            uint64  `json:"sheds"`
	DeadlineExceeded uint64  `json:"deadline_exceeded"`
	QueueDepth       int     `json:"queue_depth"`
	InFlight         int     `json:"in_flight"`
	AvgBatch         float64 `json:"avg_batch"`
	HitRate          float64 `json:"hit_rate"`
}

// latencyStatz is one path's request-duration summary in milliseconds.
type latencyStatz struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// latencyStatzFrom summarizes a request-duration histogram; zero when the
// path has seen no requests.
func latencyStatzFrom(h *obs.Histogram) latencyStatz {
	return latencyStatz{
		Count: h.Count(),
		P50Ms: h.Quantile(0.50) * 1000,
		P90Ms: h.Quantile(0.90) * 1000,
		P99Ms: h.Quantile(0.99) * 1000,
		MaxMs: h.Max() * 1000,
	}
}

func toPathStatz(s PathStats) pathStatz {
	return pathStatz{
		Requests: s.Requests, CacheHits: s.CacheHits, Batches: s.Batches,
		Items: s.Items, Sheds: s.Sheds, DeadlineExceeded: s.DeadlineExceeded,
		QueueDepth: s.QueueDepth,
		InFlight:   s.InFlight, AvgBatch: s.AvgBatch(), HitRate: s.HitRate(),
	}
}

func (e *Engine) handleStatz(w http.ResponseWriter, _ *http.Request) {
	st := e.Stats()
	latency := map[string]latencyStatz{}
	for _, path := range []string{"/predict", "/suggest", "/scan"} {
		h := obs.RequestHistogram(e.reg, path)
		if h.Count() > 0 {
			latency[path] = latencyStatzFrom(h)
		}
	}
	writeJSON(w, statzResponse{
		Backend: st.Backend, Generation: st.Generation,
		Draining: st.Draining, Reloading: st.Reloading, Reloads: st.Reloads,
		Predict: toPathStatz(st.Predict), Suggest: toPathStatz(st.Suggest),
		Latency: latency,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
