package cast

import (
	"strings"
)

// Serialize renders the AST in the paper's pycparser-inspired DFS order
// (Table 6): each node contributes a label token such as "For:",
// "Assignment: =", "ID: i", or "Constant: int, 0", and children follow in
// depth-first order. The result is the "AST" code representation fed to the
// model tokenizer.
func Serialize(n Node) string {
	var s serializer
	s.node(n)
	return strings.Join(s.out, " ")
}

// SerializeTokens returns the DFS serialization as a token slice, splitting
// composite labels the way the model tokenizer would.
func SerializeTokens(n Node) []string {
	return strings.Fields(Serialize(n))
}

type serializer struct {
	out []string
}

func (s *serializer) emit(parts ...string) {
	s.out = append(s.out, parts...)
}

func (s *serializer) node(n Node) {
	switch v := n.(type) {
	case *File:
		for _, it := range v.Items {
			s.node(it)
		}
	case *FuncDef:
		s.emit("FuncDef:", "Decl:", v.Name)
		for _, p := range v.Params {
			s.node(p)
		}
		s.node(v.Body)
	case *Decl:
		s.emit("Decl:", v.Name, "TypeDecl:", strings.Join(append(append([]string{}, v.Type.Quals...), v.Type.Names...), " "))
		for _, d := range v.ArrayDims {
			s.emit("ArrayDecl:")
			if d != nil {
				s.node(d)
			}
		}
		if v.Init != nil {
			s.node(v.Init)
		}
	case *Block:
		s.emit("Compound:")
		for _, st := range v.Stmts {
			s.node(st)
		}
	case *ExprStmt:
		s.node(v.X)
	case *DeclStmt:
		for _, d := range v.Decls {
			s.node(d)
		}
	case *For:
		s.emit("For:")
		if v.Init != nil {
			s.node(v.Init)
		}
		if v.Cond != nil {
			s.node(v.Cond)
		}
		if v.Post != nil {
			s.node(v.Post)
		}
		s.node(v.Body)
	case *While:
		s.emit("While:")
		s.node(v.Cond)
		s.node(v.Body)
	case *DoWhile:
		s.emit("DoWhile:")
		s.node(v.Body)
		s.node(v.Cond)
	case *If:
		s.emit("If:")
		s.node(v.Cond)
		s.node(v.Then)
		if v.Else != nil {
			s.node(v.Else)
		}
	case *Return:
		s.emit("Return:")
		if v.X != nil {
			s.node(v.X)
		}
	case *Break:
		s.emit("Break:")
	case *Continue:
		s.emit("Continue:")
	case *Empty:
		s.emit("EmptyStatement:")
	case *PragmaStmt:
		s.emit("Pragma:", v.Text)
		if v.Stmt != nil {
			s.node(v.Stmt)
		}
	case *Ident:
		s.emit("ID:", v.Name)
	case *IntLit:
		s.emit("Constant:", "int,", v.Text)
	case *FloatLit:
		s.emit("Constant:", "float,", v.Text)
	case *CharLit:
		s.emit("Constant:", "char,", v.Text)
	case *StrLit:
		s.emit("Constant:", "string,", v.Text)
	case *BinaryOp:
		s.emit("BinaryOp:", v.Op)
		s.node(v.L)
		s.node(v.R)
	case *Assign:
		s.emit("Assignment:", v.Op)
		s.node(v.L)
		s.node(v.R)
	case *UnaryOp:
		op := v.Op
		if v.Postfix {
			op = "p" + op
		}
		s.emit("UnaryOp:", op)
		s.node(v.X)
	case *ArrayRef:
		s.emit("ArrayRef:")
		s.node(v.Arr)
		s.node(v.Index)
	case *FuncCall:
		s.emit("FuncCall:")
		s.node(v.Fun)
		s.emit("ExprList:")
		for _, a := range v.Args {
			s.node(a)
		}
	case *Member:
		op := "."
		if v.Arrow {
			op = "->"
		}
		s.emit("StructRef:", op)
		s.node(v.X)
		s.emit("ID:", v.Field)
	case *Ternary:
		s.emit("TernaryOp:")
		s.node(v.Cond)
		s.node(v.Then)
		s.node(v.Else)
	case *Cast:
		s.emit("Cast:", strings.Join(v.Type.Names, " "))
		s.node(v.X)
	case *Sizeof:
		s.emit("UnaryOp:", "sizeof")
		if v.X != nil {
			s.node(v.X)
		}
	case *Comma:
		s.emit("ExprList:")
		s.node(v.L)
		s.node(v.R)
	case *InitList:
		s.emit("InitList:")
		for _, e := range v.Elems {
			s.node(e)
		}
	}
}
