package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pragformer/internal/nn"
	"pragformer/internal/tensor"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{
		Seed: 7, Workers: 2, NextEpoch: 3,
		Shuffler: 0xdeadbeef, RNG: []uint64{1, 2},
		OptStep:  42,
		OptM:     [][]float64{{0.1, 0.2}, {0.3}},
		OptV:     [][]float64{{0.4, 0.5}, {0.6}},
		BestLoss: 0.25, BestEpoch: 1,
		Epochs: []EpochRecord{
			{Epoch: 0, TrainLoss: 1, ValidLoss: 0.5, ValidAccuracy: 0.7},
			{Epoch: 1, TrainLoss: 0.8, ValidLoss: 0.25, ValidAccuracy: 0.8},
			{Epoch: 2, TrainLoss: 0.7, ValidLoss: 0.3, ValidAccuracy: 0.8},
		},
	}
	params := []*nn.Param{
		{Name: "a", W: tensor.FromSlice(1, 2, []float64{1.5, -2.5}), Grad: tensor.New(1, 2)},
		{Name: "b", W: tensor.FromSlice(1, 1, []float64{3.25}), Grad: tensor.New(1, 1)},
	}
	s.CaptureParams(params)
	s.BestWeights = CopyWeights(params)
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != s.Seed || got.Workers != s.Workers || got.NextEpoch != s.NextEpoch ||
		got.Shuffler != s.Shuffler || got.OptStep != s.OptStep || got.BestEpoch != s.BestEpoch {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
	if len(got.Epochs) != 3 || got.Epochs[1].ValidLoss != 0.25 {
		t.Fatalf("epochs mismatch: %+v", got.Epochs)
	}
	if got.Weights[0][1] != -2.5 || got.BestWeights[1][0] != 3.25 {
		t.Fatalf("weights mismatch: %+v", got.Weights)
	}

	// Applying the weights back restores bit-identical values.
	params := []*nn.Param{
		{Name: "a", W: tensor.New(1, 2), Grad: tensor.New(1, 2)},
		{Name: "b", W: tensor.New(1, 1), Grad: tensor.New(1, 1)},
	}
	if err := got.ApplyWeights(params, got.Weights); err != nil {
		t.Fatal(err)
	}
	if params[0].W.Data[0] != 1.5 || params[1].W.Data[0] != 3.25 {
		t.Fatalf("applied weights wrong: %+v", params[0].W.Data)
	}
}

// TestCorruptCheckpoints is the corrupt/truncated-artifact table test for
// the checkpoint format: every mutilation must fail loudly, never panic or
// silently load partial state.
func TestCorruptCheckpoints(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	futureVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(futureVersion[6:10], FormatVersion+1)

	bitFlip := append([]byte(nil), good...)
	bitFlip[len(bitFlip)-3] ^= 0x40

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'

	// A corrupted length field must error descriptively, not attempt the
	// allocation it advertises.
	hugeLength := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(hugeLength[10:18], 1<<60)
	lyingLength := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(lyingLength[10:18], uint64(len(good)+1000))

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated header"},
		{"short header", good[:10], "truncated header"},
		{"truncated payload", good[:len(good)-5], "truncated payload"},
		{"header only", good[:22], "truncated payload"},
		{"bad magic", badMagic, "not a checkpoint"},
		{"newer version", futureVersion, "newer format"},
		{"payload bit flip", bitFlip, "CRC mismatch"},
		{"implausible length", hugeLength, "implausible payload length"},
		{"length past EOF", lyingLength, "truncated payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestApplyWeightsValidates(t *testing.T) {
	s := sampleSnapshot()
	mk := func(names []string, shapes [][2]int) []*nn.Param {
		out := make([]*nn.Param, len(names))
		for i := range names {
			out[i] = &nn.Param{Name: names[i], W: tensor.New(shapes[i][0], shapes[i][1])}
		}
		return out
	}
	if err := s.ApplyWeights(mk([]string{"a"}, [][2]int{{1, 2}}), s.Weights); err == nil {
		t.Error("tensor count mismatch accepted")
	}
	if err := s.ApplyWeights(mk([]string{"a", "z"}, [][2]int{{1, 2}, {1, 1}}), s.Weights); err == nil {
		t.Error("tensor name mismatch accepted")
	}
	if err := s.ApplyWeights(mk([]string{"a", "b"}, [][2]int{{1, 2}, {2, 1}}), s.Weights); err == nil {
		t.Error("tensor shape mismatch accepted")
	}
	short := CopyWeights(mk([]string{"a", "b"}, [][2]int{{1, 2}, {1, 1}}))
	short[1] = short[1][:0]
	if err := s.ApplyWeights(mk([]string{"a", "b"}, [][2]int{{1, 2}, {1, 1}}), short); err == nil {
		t.Error("short weight vector accepted")
	}
}

func TestWriteFileAtomicKeepsOldArtifactOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good artifact"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A failed write must leave the existing artifact untouched and no
	// temp file behind.
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("torn")); werr != nil {
			return werr
		}
		return fmt.Errorf("disk full")
	})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("write error not propagated: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "good artifact" {
		t.Fatalf("artifact clobbered: %q, %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.txt")
	for _, content := range []string{"one", "two"} {
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	data, _ := os.ReadFile(path)
	if string(data) != "two" {
		t.Fatalf("got %q", data)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "nope", "x.gob"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
