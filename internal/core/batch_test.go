package core

import (
	"math/rand"
	"testing"
)

// batchTestModel builds a randomly initialized model — parity holds for any
// weights, so no training is needed.
func batchTestModel(t testing.TB, layers, maxLen int) *PragFormer {
	t.Helper()
	m, err := New(Config{Vocab: 200, MaxLen: maxLen, D: 32, Heads: 4, Layers: layers, Dropout: 0.1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// raggedIDs generates n id sequences with lengths in [minLen, maxLen].
func raggedIDs(rng *rand.Rand, n, minLen, maxLen, vocab int) [][]int {
	out := make([][]int, n)
	for i := range out {
		T := minLen + rng.Intn(maxLen-minLen+1)
		ids := make([]int, T)
		ids[0] = 2 // [CLS], as tokenize.Vocab.Encode emits
		for t := 1; t < T; t++ {
			ids[t] = 4 + rng.Intn(vocab-4)
		}
		out[i] = ids
	}
	return out
}

// TestPredictBatchParity asserts bit-exact agreement between PredictBatch
// and looped Predict across batch sizes, ragged lengths, and layer counts.
func TestPredictBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, layers := range []int{1, 2} {
		m := batchTestModel(t, layers, 64)
		for _, B := range []int{1, 3, 16} {
			batch := raggedIDs(rng, B, 1, 64, m.Cfg.Vocab)
			got := m.PredictBatch(batch)
			probs := m.PredictBatchProbs(batch)
			labels := m.PredictLabelBatch(batch)
			if len(got) != B {
				t.Fatalf("layers=%d B=%d: got %d results", layers, B, len(got))
			}
			for i, ids := range batch {
				want := m.Predict(ids)
				if got[i] != want {
					t.Errorf("layers=%d B=%d seq %d (len %d): batch %v != single %v",
						layers, B, i, len(ids), got[i], want)
				}
				if probs[i][1] != want {
					t.Errorf("layers=%d B=%d seq %d: probs[1] %v != %v", layers, B, i, probs[i][1], want)
				}
				if labels[i] != m.PredictLabel(ids) {
					t.Errorf("layers=%d B=%d seq %d: label mismatch", layers, B, i)
				}
			}
		}
	}
}

// TestPredictBatchProbsLoss asserts that both class probabilities match the
// single-example path bit-for-bit (the batched evaluator derives losses
// from them).
func TestPredictBatchProbsLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := batchTestModel(t, 1, 64)
	batch := raggedIDs(rng, 5, 2, 40, m.Cfg.Vocab)
	probs := m.PredictBatchProbs(batch)
	for i, ids := range batch {
		c := m.forwardCls(ids, false)
		if probs[i] != c.prob {
			t.Errorf("seq %d: batch probs %v != single %v", i, probs[i], c.prob)
		}
	}
}

// TestPredictBatchTruncation asserts over-long sequences are truncated to
// MaxLen exactly as the single path does.
func TestPredictBatchTruncation(t *testing.T) {
	m := batchTestModel(t, 1, 16)
	long := make([]int, 40)
	long[0] = 2
	for i := 1; i < len(long); i++ {
		long[i] = 4 + i%100
	}
	got := m.PredictBatch([][]int{long})
	if want := m.Predict(long); got[0] != want {
		t.Errorf("truncated batch %v != single %v", got[0], want)
	}
}

// TestPredictBatchEmpty covers the degenerate shapes.
func TestPredictBatchEmpty(t *testing.T) {
	m := batchTestModel(t, 1, 16)
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Errorf("PredictBatch(nil) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("PredictBatch with an empty sequence should panic")
		}
	}()
	m.PredictBatch([][]int{{}})
}

// TestPredictBatchRaggedEdges pins the strided attention layout on the
// degenerate ragged shapes: a lone [CLS] token (T=1, where a head's score
// matrix is 1×1 and softmax is the identity), a batch of nothing but
// single-token sequences, exact-MaxLen sequences, and over-length inputs
// that truncate — each bit-identical to the single-sequence path, on both
// backends.
func TestPredictBatchRaggedEdges(t *testing.T) {
	m := batchTestModel(t, 2, 16)
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]int, 16)
	over := make([]int, 40)
	full[0], over[0] = 2, 2
	for i := 1; i < len(full); i++ {
		full[i] = 4 + i
	}
	for i := 1; i < len(over); i++ {
		over[i] = 4 + i%100
	}
	batches := map[string][][]int{
		"B=1 single token":  {{2}},
		"all single token":  {{2}, {2}, {2}},
		"single+full+over":  {{2}, full, over},
		"exact MaxLen only": {full, full},
	}
	for name, batch := range batches {
		for _, backend := range []Backend{m, q} {
			probs := backend.PredictBatchProbs(batch)
			got := backend.PredictBatch(batch)
			if len(got) != len(batch) {
				t.Fatalf("%s/%s: %d results for %d sequences", name, backend.BackendName(), len(got), len(batch))
			}
			for i, ids := range batch {
				want := backend.Predict(ids)
				if got[i] != want || probs[i][1] != want {
					t.Errorf("%s/%s seq %d: batch %v probs[1] %v != single %v",
						name, backend.BackendName(), i, got[i], probs[i][1], want)
				}
			}
		}
	}
}

// TestPredictBatchAllocs is the allocation gate for the pooled forward
// path: the 16-sequence benchmark workload must not regress toward
// per-call matmul allocations (seed level was 13 allocs/op; the pooled
// kernels run at 6).
func TestPredictBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state pools")
	}
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis and inflates allocs/op")
	}
	m := batchTestModel(t, 1, 64)
	batch := raggedIDs(rand.New(rand.NewSource(3)), 16, 12, 64, m.Cfg.Vocab)
	m.PredictBatch(batch) // prime the pools
	allocs := testing.AllocsPerRun(20, func() { m.PredictBatch(batch) })
	if allocs > 12 {
		t.Errorf("PredictBatch allocates %.1f objects/op, want <= 12 (pool regression)", allocs)
	}
}

// TestPredictBatchConcurrent hammers one model from several goroutines so
// the race detector can see the forward path is read-only.
func TestPredictBatchConcurrent(t *testing.T) {
	m := batchTestModel(t, 2, 32)
	batch := raggedIDs(rand.New(rand.NewSource(9)), 8, 2, 32, m.Cfg.Vocab)
	want := m.PredictBatch(batch)
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			ok := true
			for rep := 0; rep < 10; rep++ {
				got := m.PredictBatch(batch)
				for i := range got {
					if got[i] != want[i] {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Error("concurrent PredictBatch diverged from sequential result")
		}
	}
}

// benchBatch is the fixed 16-sequence workload shared by the two
// benchmarks below, at the Fast-pipeline model scale.
func benchBatch(b *testing.B) (*PragFormer, [][]int) {
	m := batchTestModel(b, 1, 64)
	return m, raggedIDs(rand.New(rand.NewSource(3)), 16, 12, 64, m.Cfg.Vocab)
}

// BenchmarkPredictSequential16 is the baseline: 16 snippets through the
// per-example Predict path.
func BenchmarkPredictSequential16(b *testing.B) {
	m, batch := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ids := range batch {
			m.Predict(ids)
		}
	}
}

// BenchmarkPredictBatch measures the same 16 snippets through one
// PredictBatch call; the acceptance target is ≥2× the sequential baseline
// (see BENCH_SERVE.json).
func BenchmarkPredictBatch(b *testing.B) {
	m, batch := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(batch)
	}
}
