package bow

import (
	"math"
	"strings"
	"testing"

	"pragformer/internal/tokenize"
)

func vocabFor(seqs [][]string) *tokenize.Vocab {
	return tokenize.BuildVocab(seqs, 1)
}

func TestLearnsKeywordSignal(t *testing.T) {
	// Positive examples contain "sum", negatives contain "fprintf".
	var examples []Example
	for i := 0; i < 40; i++ {
		examples = append(examples,
			Example{Tokens: []string{"for", "sum", "+=", "a", "[", "i", "]"}, Label: true},
			Example{Tokens: []string{"for", "fprintf", "(", "stderr", ")"}, Label: false})
	}
	var seqs [][]string
	for _, ex := range examples {
		seqs = append(seqs, ex.Tokens)
	}
	m := New(vocabFor(seqs))
	losses := m.Train(examples, TrainConfig{Epochs: 15, LR: 0.1, Seed: 1})
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if !m.PredictLabel([]string{"sum", "+=", "x"}) {
		t.Error("positive-pattern misclassified")
	}
	if m.PredictLabel([]string{"fprintf", "(", "stderr"}) {
		t.Error("negative-pattern misclassified")
	}
}

func TestPredictRange(t *testing.T) {
	m := New(vocabFor([][]string{{"a", "b"}}))
	p := m.Predict([]string{"a", "zzz_unseen"})
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("p = %g", p)
	}
}

func TestOrderInvariance(t *testing.T) {
	// BoW discards order by construction.
	m := New(vocabFor([][]string{{"a", "b", "c"}}))
	m.Weights[m.Vocab.ID("a")] = 0.7
	m.Weights[m.Vocab.ID("c")] = -0.2
	p1 := m.Predict([]string{"a", "b", "c"})
	p2 := m.Predict([]string{"c", "b", "a"})
	if p1 != p2 {
		t.Fatalf("order changed prediction: %g vs %g", p1, p2)
	}
}

func TestFeaturizeCounts(t *testing.T) {
	m := New(vocabFor([][]string{{"x", "y"}}))
	f := m.Featurize([]string{"x", "x", "y", "unk1", "unk2"})
	if f[m.Vocab.ID("x")] != 2 || f[m.Vocab.ID("y")] != 1 {
		t.Fatalf("f = %v", f)
	}
	if f[tokenize.UNK] != 2 {
		t.Errorf("unk count = %g", f[tokenize.UNK])
	}
}

func TestDeterministicTraining(t *testing.T) {
	mk := func() *Model {
		examples := []Example{
			{Tokens: []string{"a", "b"}, Label: true},
			{Tokens: []string{"c", "d"}, Label: false},
			{Tokens: []string{"a", "d"}, Label: true},
		}
		m := New(vocabFor([][]string{{"a", "b", "c", "d"}}))
		m.Train(examples, TrainConfig{Epochs: 5, LR: 0.1, Seed: 7})
		return m
	}
	m1, m2 := mk(), mk()
	for i := range m1.Weights {
		if m1.Weights[i] != m2.Weights[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	examples := []Example{}
	for i := 0; i < 30; i++ {
		examples = append(examples,
			Example{Tokens: []string{"p"}, Label: true},
			Example{Tokens: []string{"q"}, Label: false})
	}
	v := vocabFor([][]string{{"p", "q"}})
	free := New(v)
	free.Train(examples, TrainConfig{Epochs: 30, LR: 0.2, Seed: 1})
	reg := New(v)
	reg.Train(examples, TrainConfig{Epochs: 30, LR: 0.2, L2: 0.1, Seed: 1})
	if math.Abs(reg.Weights[v.ID("p")]) >= math.Abs(free.Weights[v.ID("p")]) {
		t.Errorf("L2 did not shrink weights: %g vs %g",
			reg.Weights[v.ID("p")], free.Weights[v.ID("p")])
	}
}

func TestTopWeights(t *testing.T) {
	v := vocabFor([][]string{{"good", "bad", "meh"}})
	m := New(v)
	m.Weights[v.ID("good")] = 2
	m.Weights[v.ID("bad")] = -2
	m.Weights[v.ID("meh")] = 0.1
	pos, neg := m.TopWeights(2)
	if len(pos) == 0 || pos[0] != "good" {
		t.Errorf("pos = %v", pos)
	}
	if len(neg) == 0 || neg[0] != "bad" {
		t.Errorf("neg = %v", neg)
	}
}

func TestSigmoidStable(t *testing.T) {
	for _, x := range []float64{-1000, -10, 0, 10, 1000} {
		s := sigmoid(x)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("sigmoid(%g) = %g", x, s)
		}
	}
	if sigmoid(0) != 0.5 {
		t.Error("sigmoid(0) != 0.5")
	}
	if s := sigmoid(3) + sigmoid(-3); math.Abs(s-1) > 1e-12 {
		t.Errorf("sigmoid symmetry violated: %g", s)
	}
}

func TestTrainEmptySafe(t *testing.T) {
	m := New(vocabFor(nil))
	losses := m.Train(nil, TrainConfig{Epochs: 2})
	if len(losses) != 2 {
		t.Fatalf("losses = %v", losses)
	}
}

func TestTopWeightsNamesReadable(t *testing.T) {
	v := vocabFor([][]string{{"fprintf", "sum"}})
	m := New(v)
	m.Weights[v.ID("sum")] = 1
	m.Weights[v.ID("fprintf")] = -1
	pos, neg := m.TopWeights(1)
	if strings.Join(pos, "") != "sum" || strings.Join(neg, "") != "fprintf" {
		t.Errorf("pos=%v neg=%v", pos, neg)
	}
}
