package corpus

import (
	"fmt"
	"math/rand"
)

// Name pools. GitHub-mined code exhibits a long tail of identifier spellings
// with a heavy head of conventional names (the paper §5.1: "iteration
// variables tend to be named i, j, k, and A, B, C, vec, arr as matrices and
// vectors"); the pools reproduce both the head and a synthetic tail so the
// Text-representation vocabulary is realistically larger than the
// Replaced-Text vocabulary (Table 7).

var loopVarHead = []string{"i", "j", "k", "l", "m", "ii", "jj", "idx", "t"}

var arrayHead = []string{
	"A", "B", "C", "a", "b", "c", "x", "y", "z", "u", "v", "w",
	"vec", "arr", "data", "buf", "src", "dst", "out", "in", "res",
	"mat", "grid", "tmp", "p", "q", "r", "field", "img", "mask",
	"x1", "y_1", "x2", "y_2", "sum_tang", "mean", "path", "work",
}

var scalarHead = []string{
	"sum", "s", "t", "acc", "total", "prod", "val", "alpha", "beta",
	"scale", "factor", "tmp", "mx", "mn", "avg", "norm", "energy", "err",
}

var boundHead = []string{"n", "N", "len", "size", "m", "M", "cnt", "dim", "rows", "cols", "nx", "ny", "maxgrid", "limit"}

var arrayStems = []string{
	"vel", "pos", "force", "rho", "pressure", "temp", "flux", "phi",
	"psi", "omega", "grad", "div", "curl", "weight", "bias", "coef",
	"delta", "gamma", "theta", "lambda", "sigma", "kappa", "edge",
	"node", "cell", "face", "vert", "elem", "row", "col", "diag",
	"lower", "upper", "left", "right", "north", "south", "east", "west",
	"input", "output", "result", "buffer", "table", "list", "queue",
	"stack", "heap", "tree", "graph", "image", "pixel", "frame", "block",
	"tile", "chunk", "slice", "band", "layer", "state", "score", "dist",
	"cost", "gain", "loss", "rate", "freq", "amp", "phase", "real",
	"imag", "keys", "vals", "hist", "bins", "count", "accum", "partial",
}

var arraySuffixes = []string{"", "s", "0", "1", "2", "_new", "_old", "_tmp", "_buf", "_arr", "_vec", "_loc", "_glob", "_in", "_out"}

// pureFuncNames name side-effect-free helper functions; their spellings hint
// at purity, which is the kind of lexical signal the paper's LIME analysis
// surfaces.
var pureFuncNames = []string{
	"square", "cube", "scale_val", "clamp", "lerp", "smooth", "weight_of",
	"dist2", "norm2", "phi_at", "eval_poly", "blend", "gauss", "kernel_at",
	"decay", "activation", "sigmoid_of", "relu_of", "mix", "interp",
}

// impureFuncNames name helpers with global side effects.
var impureFuncNames = []string{
	"update_state", "log_event", "record_stat", "push_result", "emit",
	"advance_clock", "bump_counter", "enqueue_item", "register_hit",
	"append_entry", "store_global", "commit_row", "track_error",
}

// names draws identifiers for one snippet, deterministically from rng.
type names struct {
	rng *rand.Rand
}

func (nm names) loopVar() string { return loopVarHead[nm.rng.Intn(6)] }

// loopVars returns d distinct loop variable names starting from the
// conventional i, j, k sequence.
func (nm names) loopVars(d int) []string {
	start := nm.rng.Intn(3)
	out := make([]string, d)
	for x := 0; x < d; x++ {
		out[x] = loopVarHead[(start+x)%len(loopVarHead)]
	}
	return out
}

func (nm names) array() string {
	if nm.rng.Intn(100) < 65 {
		return arrayHead[nm.rng.Intn(len(arrayHead))]
	}
	return arrayStems[nm.rng.Intn(len(arrayStems))] + arraySuffixes[nm.rng.Intn(len(arraySuffixes))]
}

// arrays returns d distinct array names.
func (nm names) arrays(d int) []string {
	seen := map[string]bool{}
	out := make([]string, 0, d)
	for len(out) < d {
		a := nm.array()
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func (nm names) scalar() string {
	if nm.rng.Intn(100) < 70 {
		return scalarHead[nm.rng.Intn(len(scalarHead))]
	}
	return arrayStems[nm.rng.Intn(len(arrayStems))] + "_v"
}

func (nm names) reductionScalar() string {
	// Reduction targets use accumulator-flavored names almost always.
	pool := []string{"sum", "total", "acc", "s", "prod", "norm", "energy", "dot", "partial_sum", "checksum"}
	return pool[nm.rng.Intn(len(pool))]
}

func (nm names) bound() string { return boundHead[nm.rng.Intn(len(boundHead))] }

func (nm names) pureFunc() string { return pureFuncNames[nm.rng.Intn(len(pureFuncNames))] }

func (nm names) impureFunc() string { return impureFuncNames[nm.rng.Intn(len(impureFuncNames))] }

// smallConst returns a small integer constant.
func (nm names) smallConst() int { return 1 + nm.rng.Intn(9) }

// bigConst returns a large bound constant; spread widely to diversify the
// Text vocabulary the way real constants do.
func (nm names) bigConst() int {
	base := []int{64, 100, 128, 256, 500, 512, 1000, 1024, 2048, 4000, 4096, 8192, 10000}
	v := base[nm.rng.Intn(len(base))]
	if nm.rng.Intn(3) == 0 {
		v += nm.rng.Intn(64)
	}
	return v
}

// tinyConst returns an unprofitably small trip count.
func (nm names) tinyConst() int { return 2 + nm.rng.Intn(46) }

// floatConst returns a floating literal string.
func (nm names) floatConst() string {
	pool := []string{"0.5", "2.0", "1.5", "0.25", "3.0", "0.1", "1.0", "0.9", "4.0", "0.01", "2.5", "0.333"}
	return pool[nm.rng.Intn(len(pool))]
}

// uniqueTag produces an occasional unique identifier to build the long-tail
// vocabulary (and OOV types in validation/test splits, Table 7).
func (nm names) uniqueTag(kind string, n int) string {
	return fmt.Sprintf("%s_%s%d", arrayStems[nm.rng.Intn(len(arrayStems))], kind, n%97)
}
