package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	expectPanic(t, "MatMulInto", func() { MatMulInto(New(2, 2), a, b) })
	expectPanic(t, "MatMulAT", func() { MatMulAT(New(3, 2), New(2, 2)) })
	expectPanic(t, "MatMulBT", func() { MatMulBT(New(2, 3), New(2, 4)) })
	expectPanic(t, "AddInPlace", func() { a.AddInPlace(New(3, 2)) })
	expectPanic(t, "Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	expectPanic(t, "Axpy", func() { Axpy(1, []float64{1}, []float64{1, 2}) })
}

func TestMatMulIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(3, 4).Randn(rng, 1)
	b := New(4, 2).Randn(rng, 1)
	out := New(3, 2)
	for i := range out.Data {
		out.Data[i] = 99 // stale values must be overwritten
	}
	MatMulInto(out, a, b)
	want := MatMul(a, b)
	for i := range want.Data {
		if out.Data[i] != want.Data[i] {
			t.Fatalf("stale data survived at %d", i)
		}
	}
}

func TestRowSoftmaxAllNegInf(t *testing.T) {
	// A row of -Inf yields sum 0; the guard must avoid NaN writes.
	m := FromSlice(1, 2, []float64{math.Inf(-1), math.Inf(-1)})
	RowSoftmax(m)
	for _, v := range m.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN leaked from degenerate softmax row")
		}
	}
}

func TestSoftmaxVecEmpty(t *testing.T) {
	if out := SoftmaxVec(nil); len(out) != 0 {
		t.Fatal("empty softmax should be empty")
	}
}

func TestNorm2(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if m.Norm2() != 5 {
		t.Errorf("norm = %g", m.Norm2())
	}
	if New(2, 2).Norm2() != 0 {
		t.Error("zero matrix norm != 0")
	}
}

func TestParallelForSingleElement(t *testing.T) {
	calls := 0
	ParallelFor(1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1 {
			t.Errorf("range [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestMatMulZeroDimensions(t *testing.T) {
	// Degenerate shapes must not panic.
	a := New(0, 3)
	b := New(3, 2)
	c := MatMul(a, b)
	if c.Rows != 0 || c.Cols != 2 {
		t.Fatalf("c = %dx%d", c.Rows, c.Cols)
	}
	d := MatMul(New(2, 0), New(0, 2))
	for _, v := range d.Data {
		if v != 0 {
			t.Fatal("empty inner dim should give zeros")
		}
	}
}

func TestSparseSkipInMatMul(t *testing.T) {
	// Sparse activation rows (zeros in a) must not change results.
	a := FromSlice(2, 2, []float64{0, 1, 2, 0})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	c := MatMul(a, b)
	want := []float64{7, 8, 10, 12}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("c = %v", c.Data)
		}
	}
}
