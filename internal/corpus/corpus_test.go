package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"pragformer/internal/cast"
	"pragformer/internal/cparse"
	"pragformer/internal/dep"
)

const testTotal = 1200

var testCorpus = Generate(Config{Seed: 1, Total: testTotal}) // shared across tests

func TestGenerateCounts(t *testing.T) {
	if len(testCorpus.Records) != testTotal {
		t.Fatalf("records = %d", len(testCorpus.Records))
	}
	s := testCorpus.Stats()
	posFrac := float64(s.WithDirective) / float64(s.Total)
	if posFrac < 0.42 || posFrac > 0.48 {
		t.Errorf("positive fraction = %.3f, want ≈ 0.4485 (Table 3)", posFrac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c2 := Generate(Config{Seed: 1, Total: 300})
	c3 := Generate(Config{Seed: 1, Total: 300})
	for i := range c2.Records {
		if c2.Records[i].Code != c3.Records[i].Code {
			t.Fatalf("record %d differs between equal-seed runs", i)
		}
		if c2.Records[i].HasOMP() != c3.Records[i].HasOMP() {
			t.Fatalf("record %d label differs", i)
		}
	}
	c4 := Generate(Config{Seed: 2, Total: 300})
	same := 0
	for i := range c2.Records {
		if c2.Records[i].Code == c4.Records[i].Code {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds produced %d/300 identical records", same)
	}
}

func TestRecordsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range testCorpus.Records {
		if seen[r.Code] {
			t.Fatalf("duplicate record: %s", r.Code)
		}
		seen[r.Code] = true
	}
}

func TestAllRecordsParse(t *testing.T) {
	for _, r := range testCorpus.Records {
		if _, err := cparse.Parse(r.Code); err != nil {
			t.Fatalf("record %d (%s) does not parse: %v\n%s", r.ID, r.Template, err, r.Code)
		}
	}
}

func TestAllRecordsContainForLoop(t *testing.T) {
	for _, r := range testCorpus.Records {
		if !strings.Contains(r.Code, "for") && !strings.Contains(r.Code, "while") {
			t.Fatalf("record %d has no loop:\n%s", r.ID, r.Code)
		}
	}
}

// TestLabelsAreConsistent re-derives each positive record's label from its
// own code text plus the generator's analysis path: a record labeled
// positive must never contain an obvious serial marker.
func TestLabelsAreConsistent(t *testing.T) {
	for _, r := range testCorpus.Records {
		if !r.HasOMP() {
			continue
		}
		for _, bad := range []string{"printf", "fprintf", "rand()", "malloc", "strcat", "break;"} {
			if strings.Contains(r.Code, bad) {
				t.Errorf("positive record %d (%s) contains %q:\n%s", r.ID, r.Template, bad, r.Code)
			}
		}
	}
}

// TestPositiveSelfContainedRecordsPassDep verifies that positives whose
// function bodies are fully included in the code re-analyze as
// parallelizable from text alone.
func TestPositiveSelfContainedRecordsPassDep(t *testing.T) {
	checked := 0
	for _, r := range testCorpus.Records {
		if !r.HasOMP() || checked > 200 {
			continue
		}
		f, err := cparse.Parse(r.Code)
		if err != nil {
			t.Fatal(err)
		}
		funcs := map[string]*cast.FuncDef{}
		var loop *cast.For
		for _, it := range f.Items {
			if fd, ok := it.(*cast.FuncDef); ok {
				funcs[fd.Name] = fd
				continue
			}
			cast.Walk(it, func(n cast.Node) bool {
				if l, ok := n.(*cast.For); ok && loop == nil {
					loop = l
					return false
				}
				return true
			})
		}
		if loop == nil {
			t.Fatalf("positive record %d has no for-loop", r.ID)
		}
		a := dep.AnalyzeLoop(loop, funcs)
		// Records with omitted callee bodies legitimately fail text-only
		// analysis; all others must pass.
		if !a.Parallelizable && len(a.UnknownCalls) == 0 {
			t.Errorf("record %d (%s) labeled positive but text-only analysis says serial: %v\n%s",
				r.ID, r.Template, a.Reasons, r.Code)
		}
		checked++
	}
}

func TestClauseProportions(t *testing.T) {
	s := testCorpus.Stats()
	red := float64(s.Reduction) / float64(s.WithDirective)
	priv := float64(s.Private) / float64(s.WithDirective)
	dyn := float64(s.ScheduleDynamic) / float64(s.WithDirective)
	if red < 0.10 || red > 0.30 {
		t.Errorf("reduction fraction = %.3f, want ≈ 0.19", red)
	}
	if priv < 0.28 || priv > 0.60 {
		t.Errorf("private fraction = %.3f, want ≈ 0.45", priv)
	}
	if dyn < 0.02 || dyn > 0.10 {
		t.Errorf("dynamic fraction = %.3f, want ≈ 0.05", dyn)
	}
	if s.ScheduleStatic+s.ScheduleDynamic != s.WithDirective {
		t.Error("schedule counts do not partition directives")
	}
}

func TestLengthHistogramShape(t *testing.T) {
	h := testCorpus.LengthHistogram()
	tot := h[0] + h[1] + h[2] + h[3]
	if tot != testTotal {
		t.Fatalf("histogram total = %d", tot)
	}
	// Table 4 shape: monotonically decreasing with a heavy head.
	if !(h[0] > h[1] && h[1] > h[2]) {
		t.Errorf("histogram not head-heavy: %v", h)
	}
	if float64(h[0])/float64(tot) < 0.45 {
		t.Errorf("short-snippet share = %.2f, want ≈ 0.58", float64(h[0])/float64(tot))
	}
	if h[3] == 0 {
		t.Error("no >100-line snippets generated")
	}
}

func TestDomainDistributionShape(t *testing.T) {
	d := testCorpus.DomainDistribution()
	if d[DomainGeneric] < 0.35 || d[DomainGeneric] > 0.51 {
		t.Errorf("generic = %.3f, want ≈ 0.43", d[DomainGeneric])
	}
	if d[DomainUnknown] < 0.27 || d[DomainUnknown] > 0.41 {
		t.Errorf("unknown = %.3f, want ≈ 0.335", d[DomainUnknown])
	}
	if d[DomainTesting] < 0.03 || d[DomainTesting] > 0.12 {
		t.Errorf("testing = %.3f, want ≈ 0.07", d[DomainTesting])
	}
}

func TestPositivesNegativesPartition(t *testing.T) {
	pos, neg := testCorpus.Positives(), testCorpus.Negatives()
	if len(pos)+len(neg) != len(testCorpus.Records) {
		t.Fatal("positives + negatives != total")
	}
	for _, r := range pos {
		if r.Directive == nil {
			t.Fatal("positive without directive")
		}
	}
	for _, r := range neg {
		if r.Directive != nil {
			t.Fatal("negative with directive")
		}
	}
}

func TestHardeningPresent(t *testing.T) {
	var hardened int
	for _, r := range testCorpus.Records {
		if strings.Contains(r.Code, "register") || strings.Contains(r.Code, "union") ||
			strings.Contains(r.Code, "ssize_t") {
			hardened++
		}
	}
	frac := float64(hardened) / float64(len(testCorpus.Records))
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("hardened fraction = %.3f, want ≈ 0.17 (paper: 221/1,274 parse failures)", frac)
	}
}

func TestPolyBenchCounts(t *testing.T) {
	pb := GeneratePolyBench(7)
	if len(pb.Records) != 147 {
		t.Fatalf("polybench total = %d, want 147", len(pb.Records))
	}
	if p := len(pb.Positives()); p != 64 {
		t.Fatalf("polybench positives = %d, want 64", p)
	}
	for _, r := range pb.Records {
		if _, err := cparse.Parse(r.Code); err != nil {
			t.Fatalf("polybench record %d does not parse: %v\n%s", r.ID, err, r.Code)
		}
	}
}

func TestPolyBenchUsesLoopBoundMacro(t *testing.T) {
	pb := GeneratePolyBench(7)
	var macro int
	for _, r := range pb.Positives() {
		if strings.Contains(r.Code, "POLYBENCH_LOOP_BOUND") {
			macro++
		}
	}
	if macro < 50 {
		t.Errorf("only %d/64 positives use POLYBENCH_LOOP_BOUND", macro)
	}
}

func TestPolyBenchMatVecHasPrivate(t *testing.T) {
	pb := GeneratePolyBench(7)
	for _, r := range pb.Positives() {
		if r.Template == "pbMatVec" {
			if !r.NeedsPrivate() {
				t.Errorf("pbMatVec record lacks private clause: %s", r.Directive)
			}
			return
		}
	}
	t.Fatal("no pbMatVec record")
}

func TestSPECCounts(t *testing.T) {
	sp := GenerateSPEC(7)
	if len(sp.Records) != 287 {
		t.Fatalf("spec total = %d, want 287", len(sp.Records))
	}
	if p := len(sp.Positives()); p != 113 {
		t.Fatalf("spec positives = %d, want 113", p)
	}
	for _, r := range sp.Records {
		if _, err := cparse.Parse(r.Code); err != nil {
			t.Fatalf("spec record %d does not parse: %v\n%s", r.ID, err, r.Code)
		}
	}
}

func TestSPECContainsPaperConstructs(t *testing.T) {
	sp := GenerateSPEC(7)
	var ssize, reg, dyn int
	for _, r := range sp.Records {
		if strings.Contains(r.Code, "ssize_t") {
			ssize++
		}
		if strings.Contains(r.Code, "register") {
			reg++
		}
		if r.HasOMP() && r.Directive.Schedule.String() == "dynamic" {
			dyn++
		}
	}
	if ssize < 20 || reg < 20 {
		t.Errorf("ssize_t = %d, register = %d; want both ≥ 20", ssize, reg)
	}
	if dyn == 0 {
		t.Error("no schedule(dynamic,4) colormap records (paper Table 12 ex. 3)")
	}
}

func TestTemplateVariety(t *testing.T) {
	seen := map[string]int{}
	for _, r := range testCorpus.Records {
		seen[r.Template]++
	}
	if len(seen) < 30 {
		t.Errorf("only %d template families in corpus", len(seen))
	}
}

func TestLabelSnippetRules(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := &genCtx{}
	// Tiny loop must label negative despite being dependence-free.
	s := tplTinyLoop(rng, g)
	if d, _ := labelSnippet(s); d != nil {
		t.Error("tiny loop labeled positive")
	}
	// Reduction template labels positive with a reduction clause.
	s = tplReduceSum(rng, g)
	d, a := labelSnippet(s)
	if d == nil || !d.HasReduction() {
		t.Errorf("reduceSum label = %v (%v)", d, a.Reasons)
	}
	// The label never includes the loop variable as private.
	s = tplMatVec(rng, g)
	d, _ = labelSnippet(s)
	if d == nil {
		t.Fatal("matVec labeled negative")
	}
	h := dep.ParseHeader(s.loop)
	for _, p := range d.Private {
		if p == h.Var {
			t.Errorf("loop variable %q in private clause %v", h.Var, d.Private)
		}
	}
}

func TestDomainString(t *testing.T) {
	for _, d := range []Domain{DomainUnknown, DomainBenchmark, DomainTesting, DomainGeneric} {
		if d.String() == "" {
			t.Errorf("empty name for domain %d", d)
		}
	}
}

func TestCorpusString(t *testing.T) {
	if !strings.Contains(testCorpus.String(), "Open-OMP") {
		t.Error("String() missing corpus name")
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: int64(i), Total: 200})
	}
}
