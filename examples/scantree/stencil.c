#include <stdio.h>

/* Elementwise kernels: both loops are independent across iterations. */

void stencil(double *a, double *b, int n) {
    int i;
    for (i = 1; i < n - 1; i++) {
        b[i] = 0.5 * (a[i - 1] + a[i + 1]);
    }
}

void scale(double *x, int n) {
    int i;
    for (i = 0; i < n; i++) {
        x[i] = x[i] * 2.0;
    }
}
