package nn

// RNG is the dropout noise source: a xorshift64* stream whose entire state
// is a single uint64, so a checkpoint can capture it with State and a
// resumed run can continue the exact same noise sequence with SetState —
// something math/rand.Rand cannot offer, since its state is private. The
// generator quality is far beyond what dropout masking needs.
type RNG struct {
	state uint64
}

// NewRNG seeds a stream. The seed is mixed through splitmix64 so nearby
// seeds (model seed, seed+1, ...) produce uncorrelated streams.
func NewRNG(seed int64) *RNG {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	r := &RNG{}
	r.SetState(z)
	return r
}

// Uint64 advances the stream.
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// State exports the stream position for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a stream position captured by State. Zero is not a
// valid xorshift state (the stream would stick); it is mapped to a fixed
// nonzero constant, which also makes NewRNG(seed) total for every seed.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}
