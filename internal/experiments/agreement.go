package experiments

// The agreement study audits the corroborated-verdict ladder end to end:
// it runs the trained directive classifier through the advisor (dependence
// analysis + S2S corroboration, LIME off — attribution values are not
// tabulated here) over the held-out test split and the examples/scantree
// fixture tree, and reports how the positive verdicts distribute across
// the tiers. On the corpus rows the ground-truth labels additionally say
// who wins a disagreement: "dep right" counts disagreements where the
// label sides with the dependence analysis — the number that justifies
// rendering PF1003 at warning level instead of trusting the model.

import (
	"context"
	"fmt"
	"io"

	"pragformer/internal/advisor"
	"pragformer/internal/dataset"
	"pragformer/internal/dep"
	"pragformer/internal/scan"
	"pragformer/internal/tokenize"
)

// AgreementRow tabulates one source of loops.
type AgreementRow struct {
	Source   string
	Loops    int // suggestions audited (negatives included)
	Positive int // model verdicts with Parallelize=true

	// Tier distribution over the positive verdicts.
	ModelOnly    int // dependence analysis could not run
	AnalysisOnly int // analysis agrees, no S2S member parallelized
	Corroborated int // analysis agrees and an S2S member parallelized
	Disagree     int // analysis refutes the model

	// HasTruth marks corpus rows, where labels adjudicate disagreements.
	HasTruth bool
	DepRight int // disagreements where the ground truth sides with the analysis

	// Analysis depth over all audited loops (negatives included): how far
	// the dependence engine got, independent of the model's verdict.
	Witnessed int // refuted with a concrete race witness (kind + sites + vector)
	Bailed    int // analysis could not run, or refuted without a concrete witness
	Converted int // refutation rescued by privatization/reduction clauses
}

// AgreementTable is the pop_setbench-style one-driver table: every row is
// produced by the same advisor object, so the numbers are comparable
// across sources by construction.
type AgreementTable struct {
	Rows []AgreementRow
}

// AdvisorModels bundles the pipeline's trained Text-representation
// directive classifier into an advisor the way cmd/pragformer would,
// minus the clause models (the tier ladder only consumes the RQ1
// verdict). LIME is disabled: this study tabulates tiers, not tokens.
func (p *Pipeline) AdvisorModels() *advisor.Models {
	t := p.Model(dataset.TaskDirective, tokenize.Text)
	return &advisor.Models{
		Directive: t.Model,
		Vocab:     p.Vocab(tokenize.Text),
		MaxLen:    p.P.MaxLen,
		NoExplain: true,
	}
}

// RunAgreement measures model/analysis/S2S agreement on the directive
// test split and, when scanTree is non-empty, on the loops of that fixture
// tree (scanned through the same advisor object as the corpus row).
func (p *Pipeline) RunAgreement(scanTree string) AgreementTable {
	models := p.AdvisorModels()
	split := p.DirectiveSplit()

	tab := AgreementTable{}
	codes := make([]string, len(split.Test))
	for i, in := range split.Test {
		codes[i] = in.Rec.Code
	}
	p.progress("agreement study: corroborating %d test snippets", len(codes))
	items, err := models.SuggestBatch(codes)
	if err != nil {
		panic(err) // corpus snippets are generated, always lexable
	}
	row := AgreementRow{Source: "corpus-test", HasTruth: true}
	for i, it := range items {
		if it.Suggestion == nil {
			continue
		}
		cor := it.Suggestion.Corroboration
		tallyTier(&row, cor.Tier, it.Suggestion.Parallelize)
		tallyDepth(&row, cor.DepRan, cor.Races, cor.Converted)
		if cor.Tier == advisor.TierDisagree && !split.Test[i].Label {
			row.DepRight++
		}
	}
	tab.Rows = append(tab.Rows, row)

	if scanTree != "" {
		p.progress("agreement study: scanning %s", scanTree)
		rep, err := scan.Dir(context.Background(), scanTree, scan.Config{}, models)
		if err != nil {
			panic(fmt.Sprintf("agreement study: scan %s: %v", scanTree, err))
		}
		row := AgreementRow{Source: scanTree}
		for _, l := range rep.Loops {
			if l.Suggestion == nil {
				continue
			}
			s := l.Suggestion
			tallyTier(&row, advisor.ParseTier(s.Tier), s.Parallelize)
			// The scan report has no DepRan flag; the witness reasons are
			// only ever attached by an analysis that ran.
			tallyDepth(&row, len(s.Witness) > 0, s.Races, s.Converted)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab
}

// tallyDepth classifies how far the analysis got on one loop. A loop the
// analysis cleared (ran, no refutation) lands in no bucket; conversion is
// orthogonal to the witnessed/bailed split (a converted loop's refuting
// witness was dissolved, not produced).
func tallyDepth(row *AgreementRow, depRan bool, races []dep.Witness, converted []string) {
	if len(converted) > 0 {
		row.Converted++
	}
	concrete := false
	for _, w := range races {
		if w.Concrete() {
			concrete = true
		}
	}
	switch {
	case concrete:
		row.Witnessed++
	case !depRan || len(races) > 0:
		row.Bailed++
	}
}

func tallyTier(row *AgreementRow, tier advisor.Tier, positive bool) {
	row.Loops++
	if !positive {
		return
	}
	row.Positive++
	switch tier {
	case advisor.TierDisagree:
		row.Disagree++
	case advisor.TierAnalysisAgrees:
		row.AnalysisOnly++
	case advisor.TierCorroborated:
		row.Corroborated++
	default:
		row.ModelOnly++
	}
}

// Print renders the table.
func (t AgreementTable) Print(w io.Writer) {
	fmt.Fprintln(w, "Corroborated verdicts: tier distribution of positive model verdicts")
	fmt.Fprintf(w, "  %-18s %6s %9s %11s %15s %21s %9s %10s %9s %6s %9s\n",
		"source", "loops", "positive", "model-only", "model+analysis", "model+analysis+compar", "disagree", "dep right",
		"witnessed", "bailed", "converted")
	for _, r := range t.Rows {
		right := "—"
		if r.HasTruth {
			right = fmt.Sprintf("%d/%d", r.DepRight, r.Disagree)
		}
		fmt.Fprintf(w, "  %-18s %6d %9d %11d %15d %21d %9d %10s %9d %6d %9d\n",
			r.Source, r.Loops, r.Positive, r.ModelOnly, r.AnalysisOnly, r.Corroborated, r.Disagree, right,
			r.Witnessed, r.Bailed, r.Converted)
	}
}
