package scan

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pragformer/internal/ckpt"
)

// The persistent scan cache maps normalized loop hashes to their verdicts,
// making re-scans incremental: a warm scan of an unchanged tree performs
// zero model forwards. The file is JSON with a small header; a version or
// backend mismatch discards it (verdicts are not replayed across backends
// — the label-agreement gate compares backends, it does not assume them
// equal), and writes go through ckpt.WriteFileAtomic so an interrupted
// scan never leaves a torn cache.

// cacheVersion guards the on-disk layout. v2 added the tier, witness, S2S
// and attribution evidence to Suggestion; v3 added the structured race
// witnesses and conversion lists. Older entries predate those fields, so
// replaying them would make a warm scan's bytes diverge from a cold scan's
// — bump on every Suggestion field change.
const cacheVersion = 3

type cacheData struct {
	Version int                    `json:"version"`
	Backend string                 `json:"backend,omitempty"`
	Model   string                 `json:"model,omitempty"`
	Entries map[string]*Suggestion `json:"entries"`
}

// loadCache reads the cache at path. A missing file, an unreadable file, a
// layout-version bump, or a backend/model mismatch all yield an empty
// cache — stale caches cost a re-scan, never a wrong report.
func loadCache(path, backend, modelID string) (map[string]*Suggestion, error) {
	if path == "" {
		return map[string]*Suggestion{}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*Suggestion{}, nil
		}
		return nil, fmt.Errorf("scan: read cache: %w", err)
	}
	var cf cacheData
	if err := json.Unmarshal(data, &cf); err != nil {
		return map[string]*Suggestion{}, nil //nolint:nilerr // corrupt cache = cold cache
	}
	if cf.Version != cacheVersion || cf.Backend != backend || cf.Model != modelID || cf.Entries == nil {
		return map[string]*Suggestion{}, nil
	}
	return cf.Entries, nil
}

// saveCache writes back the union of the loaded cache and this scan's
// fresh verdicts. Loops that errored are left out so the next scan retries
// them.
func saveCache(path, backend, modelID string, cache map[string]*Suggestion, loops []*Loop) error {
	if path == "" {
		return nil
	}
	for _, l := range loops {
		if l.Suggestion != nil && l.Error == "" {
			cache[l.Hash] = l.Suggestion
		}
	}
	cf := cacheData{Version: cacheVersion, Backend: backend, Model: modelID, Entries: cache}
	err := ckpt.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(cf)
	})
	if err != nil {
		return fmt.Errorf("scan: write cache: %w", err)
	}
	return nil
}
