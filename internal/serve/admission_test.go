package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Readiness, admission stats, and load shedding — the serving-tier
// surface one replica exposes to the router.

func TestHTTPReadyzTracksDrainingAndReload(t *testing.T) {
	e, srv := httpEngine(t)

	get := func() (int, readyzResponse) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body readyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get(); code != http.StatusOK || !body.Ready || body.State != "ok" {
		t.Fatalf("fresh engine readyz: %d %+v", code, body)
	}

	e.SetDraining(true)
	if code, body := get(); code != http.StatusServiceUnavailable || body.Ready || body.State != "draining" {
		t.Fatalf("draining readyz: %d %+v", code, body)
	}
	// Liveness stays green the whole time.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}

	e.SetDraining(false)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("undrained readyz: %d", code)
	}
}

func TestHTTPStatzShape(t *testing.T) {
	e, srv := httpEngine(t)

	// Generate some traffic so the counters are non-trivial.
	var out struct {
		Results []predictResult `json:"results"`
	}
	req := predictRequest{Code: "for (i = 0; i < n; i++) a[i] = 0;"}
	postJSON(t, srv.URL+"/predict", req, &out)
	postJSON(t, srv.URL+"/predict", req, &out) // second: LRU hit

	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statzResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != e.Stats().Backend {
		t.Fatalf("statz backend %q, engine %q", st.Backend, e.Stats().Backend)
	}
	if st.Predict.Requests != 2 {
		t.Fatalf("predict requests = %d, want 2", st.Predict.Requests)
	}
	if st.Predict.CacheHits != 1 {
		t.Fatalf("predict cache hits = %d, want 1", st.Predict.CacheHits)
	}
	if st.Predict.HitRate <= 0 || st.Predict.HitRate > 1 {
		t.Fatalf("hit rate = %v", st.Predict.HitRate)
	}
	if st.Draining || st.Reloading {
		t.Fatalf("idle engine reports draining/reloading: %+v", st)
	}
	if st.Predict.QueueDepth != 0 || st.Predict.InFlight != 0 {
		t.Fatalf("idle engine reports queued work: %+v", st.Predict)
	}
}

// With Shed on and the queue saturated, Predict returns ErrSaturated
// instead of blocking, and a fully-shed HTTP request maps to 429 +
// Retry-After.
func TestEngineShedsWhenSaturated(t *testing.T) {
	models := testModels(t)
	models.NoCorroborate = true
	// One replica, one-deep queue, long batching window: easy to saturate
	// deterministically by filling the queue faster than the batcher drains.
	e, err := New(models, Config{
		MaxBatch: 1, MaxWait: 50 * time.Millisecond, Replicas: 1,
		QueueDepth: 1, Shed: true, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ids, err := e.encode("for (i = 0; i < n; i++) a[i] = 0;")
	if err != nil {
		t.Fatal(err)
	}
	// Flood: many more concurrent requests than queue + batch can hold.
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Predict(context.Background(), ids)
		}(i)
	}
	wg.Wait()
	shed := 0
	for _, err := range errs {
		if errors.Is(err, ErrSaturated) {
			shed++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed at saturation")
	}
	if shed == n {
		t.Fatal("every request was shed; queue never admitted work")
	}
	if e.Stats().Predict.Sheds != uint64(shed) {
		t.Fatalf("sheds counter %d, want %d", e.Stats().Predict.Sheds, shed)
	}
}

func TestHTTPShedIs429(t *testing.T) {
	models := testModels(t)
	models.NoCorroborate = true
	e, err := New(models, Config{
		MaxBatch: 1, MaxWait: 50 * time.Millisecond, Replicas: 1,
		QueueDepth: 1, Shed: true, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	// Saturate, then observe at least one whole-request 429.
	req := predictRequest{Code: "for (i = 0; i < n; i++) a[i] = 0;"}
	body, _ := json.Marshal(req)
	var saw429 bool
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				saw429 = true
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if !saw429 {
		t.Skip("saturation did not reproduce under this scheduler; engine-level shed covered by TestEngineShedsWhenSaturated")
	}
}
