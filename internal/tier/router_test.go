package tier

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pragformer/internal/advisor"
	"pragformer/internal/scan"
)

// fakeReplica is a scripted cmd/serve stand-in: deterministic verdicts,
// countable forwards, a reload that bumps the generation, and fault
// injection for the ejection tests.
type fakeReplica struct {
	t *testing.T

	gen        atomic.Uint64
	reloading  atomic.Bool
	failing    atomic.Bool // respond 500 to everything
	predicts   atomic.Int64
	suggests   atomic.Int64
	violations atomic.Int64 // traffic observed mid-reload

	srv *httptest.Server
}

// fakeVerdict is the deterministic verdict the fake fleet returns; tests
// compare against the same function.
func fakeVerdict(code string) suggestResult {
	return suggestResult{
		Parallelize: true,
		Probability: 0.75,
		Directive:   "#pragma omp parallel for",
		Tier:        "corroborated",
		Notes:       []string{"fake:" + scan.HashSnippet(code)[:8]},
	}
}

func newFakeReplica(t *testing.T) *fakeReplica {
	f := &fakeReplica{t: t}
	f.gen.Store(1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		if f.fail(w) {
			return
		}
		if f.reloading.Load() {
			f.violations.Add(1)
		}
		f.predicts.Add(1)
		var req predictRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		n := len(req.Codes) + len(req.IDs)
		results := make([]predictResult, n)
		for i := range results {
			results[i] = predictResult{Probability: 0.9, Parallelize: true}
		}
		_ = json.NewEncoder(w).Encode(predictResponse{Results: results})
	})
	mux.HandleFunc("POST /suggest", func(w http.ResponseWriter, r *http.Request) {
		if f.fail(w) {
			return
		}
		if f.reloading.Load() {
			f.violations.Add(1)
		}
		f.suggests.Add(1)
		var req suggestRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		codes := req.Codes
		if req.Code != "" {
			codes = append(codes, req.Code)
		}
		results := make([]suggestResult, len(codes))
		for i, c := range codes {
			results[i] = fakeVerdict(c)
		}
		_ = json.NewEncoder(w).Encode(suggestResponse{Results: results})
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		if f.fail(w) {
			return
		}
		f.reloading.Store(true)
		time.Sleep(20 * time.Millisecond)
		f.gen.Add(1)
		f.reloading.Store(false)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "reloaded"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if f.fail(w) {
			return
		}
		if f.reloading.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": true})
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		if f.fail(w) {
			return
		}
		var st replicaStatz
		st.Backend = "fake"
		st.Generation = f.gen.Load()
		st.Reloading = f.reloading.Load()
		_ = json.NewEncoder(w).Encode(st)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) fail(w http.ResponseWriter) bool {
	if f.failing.Load() {
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "injected failure"})
		return true
	}
	return false
}

// newTestRouter builds a router over the fakes with test-friendly pacing.
func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeReplica) *Router {
	for _, f := range fakes {
		cfg.Replicas = append(cfg.Replicas, f.srv.URL)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 10 * time.Millisecond
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testCodes(n int) []string {
	codes := make([]string, n)
	for i := range codes {
		codes[i] = fmt.Sprintf("for (i = 0; i < %d; i++)\n\ta[i] = i;\n", i+2)
	}
	return codes
}

func TestRouterPredictFansOut(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{}, a, b)
	h := rt.Handler()

	codes := testCodes(32)
	rec := postJSON(t, h, "/predict", predictRequest{Codes: codes, IDs: [][]int{{1, 2, 3}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(codes)+1 {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(codes)+1)
	}
	for i, r := range resp.Results {
		if r.Error != "" || !r.Parallelize {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	// With 32 distinct loops both replicas should have seen traffic.
	if a.predicts.Load() == 0 || b.predicts.Load() == 0 {
		t.Fatalf("fan-out skipped a replica: a=%d b=%d", a.predicts.Load(), b.predicts.Load())
	}
}

func TestRouterRoutingIsStickyByContent(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{}, a, b)

	// The same loop under different formatting must route to the same
	// replica: the key is the canonical print's hash.
	k1 := routeKey("for (i = 0; i < n; i++) a[i] = i;")
	k2 := routeKey("for (i=0;i<n;i++)   a[i]=i;")
	if k1 != k2 {
		t.Fatalf("formatting changed the routing key: %s vs %s", k1, k2)
	}
	if rt.pick(k1).name != rt.pick(k2).name {
		t.Fatal("same canonical loop routed to different replicas")
	}
}

func TestRouterShedsAtHardCap(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{MaxInFlight: 4}, a, b)

	// Saturate the bounded-load accounting: every replica at the hard cap.
	for _, rep := range rt.reps {
		rep.inflight.Store(4)
	}
	rec := postJSON(t, rt.Handler(), "/predict", predictRequest{Code: "for (i = 0; i < n; i++) a[i] = i;"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated predict: %d %s, want 429", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rt.sheds.Load() == 0 {
		t.Fatal("shed counter not bumped")
	}
	// Load released: traffic flows again.
	for _, rep := range rt.reps {
		rep.inflight.Store(0)
	}
	rec = postJSON(t, rt.Handler(), "/predict", predictRequest{Code: "for (i = 0; i < n; i++) a[i] = i;"})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release predict: %d %s", rec.Code, rec.Body)
	}
}

func TestRouterSpillsBeforeShedding(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{MaxInFlight: 4}, a, b)

	key := routeKey("for (i = 0; i < n; i++) a[i] = i;")
	owner := rt.ring.owner(key)
	// Saturate only the owner: the key must spill to the other replica,
	// not shed.
	rt.reps[owner].inflight.Store(4)
	picked := rt.pick(key)
	if picked == nil {
		t.Fatal("pick shed with a free replica available")
	}
	if picked.name == owner {
		t.Fatal("pick chose the saturated owner")
	}
}

func TestRouterClientRateLimit(t *testing.T) {
	a := newFakeReplica(t)
	rt := newTestRouter(t, Config{RatePerSec: 0.001, Burst: 2}, a)
	h := rt.Handler()

	body := predictRequest{Code: "for (i = 0; i < n; i++) a[i] = i;"}
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, h, "/predict", body); rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec := postJSON(t, h, "/predict", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: %d, want 429", rec.Code)
	}
	if rt.rateLimited.Load() != 1 {
		t.Fatalf("rateLimited = %d, want 1", rt.rateLimited.Load())
	}
	// A different client identity has its own bucket.
	buf, _ := json.Marshal(body)
	req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(buf))
	req.Header.Set("X-Client-ID", "other")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fresh client: %d %s", rec.Code, rec.Body)
	}
}

func TestRouterEjectsAndReadmits(t *testing.T) {
	a := newFakeReplica(t)
	rt := newTestRouter(t, Config{FailThreshold: 3}, a)
	h := rt.Handler()

	a.failing.Store(true)
	// Forward failures (500s) count toward ejection; the prober's failing
	// statz probes count too. Either way the replica must leave rotation.
	for i := 0; i < 3; i++ {
		postJSON(t, h, "/predict", predictRequest{Code: "for (i = 0; i < n; i++) a[i] = i;"})
	}
	waitFor(t, "ejection", func() bool { return rt.reps[a.srv.URL].getState() == stateEjected })
	if rt.ejects.Load() == 0 {
		t.Fatal("eject counter not bumped")
	}

	// With the whole fleet ejected the router sheds and reports not ready.
	rec := postJSON(t, h, "/predict", predictRequest{Code: "for (i = 0; i < n; i++) a[i] = i;"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("predict with fleet ejected: %d, want 429", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with fleet ejected: %d, want 503", rr.Code)
	}

	// Recovery: the prober's backoff re-probe readmits it.
	a.failing.Store(false)
	waitFor(t, "readmission", func() bool { return rt.reps[a.srv.URL].getState() == stateHealthy })
	if rt.readmits.Load() == 0 {
		t.Fatal("readmit counter not bumped")
	}
	rec = postJSON(t, h, "/predict", predictRequest{Code: "for (i = 0; i < n; i++) a[i] = i;"})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-readmit predict: %d %s", rec.Code, rec.Body)
	}
}

func TestRouterSuggestReadThrough(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{Backend: "fake", ModelID: "m1"}, a, b)
	h := rt.Handler()

	// A canonical-form snippet: round-trip through the parser first.
	canon, hash, ok := canonical("for (i = 0; i < n; i++) a[i] = i;")
	if !ok {
		t.Fatal("snippet did not canonicalize")
	}

	rec := postJSON(t, h, "/suggest", suggestRequest{Code: canon})
	if rec.Code != http.StatusOK {
		t.Fatalf("suggest: %d %s", rec.Code, rec.Body)
	}
	cold := a.suggests.Load() + b.suggests.Load()
	if cold == 0 {
		t.Fatal("cold suggest did not forward")
	}
	if _, hit := rt.store.Get(rt.storeKey(hash)); !hit {
		t.Fatal("canonical verdict not stored")
	}

	// Warm: the store answers, no new forward anywhere in the fleet.
	rec2 := postJSON(t, h, "/suggest", suggestRequest{Code: canon})
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm suggest: %d %s", rec2.Code, rec2.Body)
	}
	if got := a.suggests.Load() + b.suggests.Load(); got != cold {
		t.Fatalf("warm suggest forwarded (%d -> %d)", cold, got)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatalf("warm result differs from cold:\n%s\n%s", rec.Body, rec2.Body)
	}
	if rt.storeHits.Load() == 0 {
		t.Fatal("store hit not counted")
	}

	// A formatting variant of the same loop is served from the canonical
	// verdict too (scan dedupe contract) — still no forward.
	variant := "for (i=0;i<n;i++)    a[i] = i;"
	rec3 := postJSON(t, h, "/suggest", suggestRequest{Code: variant})
	if rec3.Code != http.StatusOK {
		t.Fatalf("variant suggest: %d %s", rec3.Code, rec3.Body)
	}
	if got := a.suggests.Load() + b.suggests.Load(); got != cold {
		t.Fatalf("variant suggest forwarded (%d -> %d)", cold, got)
	}
}

func TestRouterSuggestNonCanonicalNotStored(t *testing.T) {
	a := newFakeReplica(t)
	rt := newTestRouter(t, Config{Backend: "fake"}, a)

	// Non-canonical formatting: forwarded, answered, but must NOT populate
	// the canonical verdict slot.
	variant := "for (i=0;i<n;i++)   b[i] = 2*i;"
	_, hash, ok := canonical(variant)
	if !ok {
		t.Fatal("variant did not canonicalize")
	}
	rec := postJSON(t, rt.Handler(), "/suggest", suggestRequest{Code: variant})
	if rec.Code != http.StatusOK {
		t.Fatalf("suggest: %d %s", rec.Code, rec.Body)
	}
	if _, hit := rt.store.Get(rt.storeKey(hash)); hit {
		t.Fatal("non-canonical request populated the canonical verdict slot")
	}
}

func TestRouterRollingReload(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{Backend: "fake"}, a, b)
	h := rt.Handler()

	// Continuous traffic while the fleet rolls: no request may fail.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	codes := testCodes(8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := postJSON(t, h, "/predict", predictRequest{Code: codes[(w+i)%len(codes)]})
				if rec.Code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}

	genBefore := rt.storeGen.Load()
	rec := postJSON(t, h, "/reload", nil)
	close(stop)
	wg.Wait()
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Status   string `json:"status"`
		Replicas []struct {
			Replica    string `json:"replica"`
			Status     string `json:"status"`
			Generation uint64 `json:"generation"`
		} `json:"replicas"`
		StoreGeneration uint64 `json:"store_generation"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "reloaded" {
		t.Fatalf("reload status %q: %s", resp.Status, rec.Body)
	}
	for _, r := range resp.Replicas {
		if r.Status != "reloaded" || r.Generation != 2 {
			t.Fatalf("replica outcome: %+v", r)
		}
	}
	if resp.StoreGeneration != genBefore+1 {
		t.Fatalf("store generation %d, want %d", resp.StoreGeneration, genBefore+1)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed during the rolling reload", n)
	}
	if v := a.violations.Load() + b.violations.Load(); v != 0 {
		t.Fatalf("%d forwards reached a replica mid-reload", v)
	}
	// Both replicas are back in rotation.
	for _, rep := range rt.reps {
		if !rep.routable() {
			t.Fatalf("replica %s not readmitted after reload", rep.name)
		}
	}
}

func TestRouterReloadRotatesStoreGeneration(t *testing.T) {
	a := newFakeReplica(t)
	rt := newTestRouter(t, Config{Backend: "fake"}, a)
	h := rt.Handler()

	canon, _, _ := canonical("for (i = 0; i < n; i++) a[i] = i;")
	postJSON(t, h, "/suggest", suggestRequest{Code: canon})
	cold := a.suggests.Load()

	// After a rolling reload the old verdicts must not replay: the next
	// identical suggest forwards again.
	if rec := postJSON(t, h, "/reload", nil); rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body)
	}
	postJSON(t, h, "/suggest", suggestRequest{Code: canon})
	if got := a.suggests.Load(); got != cold+1 {
		t.Fatalf("post-reload suggest did not re-forward (%d -> %d)", cold, got)
	}
}

func TestRouterScanReadThroughParity(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, Config{Backend: "fake", ModelID: "m1"}, a, b)
	h := rt.Handler()

	src := `void f(int *a, int *b, int n) {
	for (int i = 0; i < n; i++)
		a[i] = i;
	for (int j = 0; j < n; j++)
		b[j] = 2 * j;
}
`
	body := scanRequest{Files: []scanFile{{Path: "x.c", Source: src}}, Stable: true}
	rec := postJSON(t, h, "/scan", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("scan: %d %s", rec.Code, rec.Body)
	}
	cold := a.suggests.Load() + b.suggests.Load()
	if cold == 0 {
		t.Fatal("cold scan did not forward")
	}

	// Parity oracle: the same sources through scan.Files directly with the
	// same verdict function must render byte-identical stable JSON.
	direct, err := scan.Files(context.Background(), []scan.Source{{Path: "x.c", Data: []byte(src)}},
		scan.Config{Workers: 2, Backend: "fake"}, oracleSuggester{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Stable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("tier scan diverges from direct scan:\n tier: %s\n direct: %s", rec.Body, want)
	}

	// Warm pass: the shared store answers every loop; zero new forwards
	// fleet-wide, byte-identical report.
	rec2 := postJSON(t, h, "/scan", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm scan: %d %s", rec2.Code, rec2.Body)
	}
	if got := a.suggests.Load() + b.suggests.Load(); got != cold {
		t.Fatalf("warm scan forwarded (%d -> %d)", cold, got)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("warm scan report differs from cold")
	}
}

// oracleSuggester drives scan.Files directly with the fake fleet's
// verdict function (via the same VerdictSuggester entry point the tier
// uses).
type oracleSuggester struct{}

func (oracleSuggester) SuggestBatch([]string) ([]advisor.BatchItem, error) {
	panic("oracle: SuggestBatch should not be called")
}

func (oracleSuggester) SuggestVerdicts(codes []string) ([]scan.Verdict, error) {
	out := make([]scan.Verdict, len(codes))
	for i, c := range codes {
		r := fakeVerdict(c)
		out[i] = scan.Verdict{Suggestion: resultToVerdict(&r)}
	}
	return out, nil
}
