package cast

import (
	"strings"
	"testing"
)

func TestPrintDoWhile(t *testing.T) {
	s := &DoWhile{
		Body: &Block{Stmts: []Stmt{&ExprStmt{X: &UnaryOp{Op: "--", X: &Ident{Name: "x"}, Postfix: true}}}},
		Cond: &BinaryOp{Op: ">", L: &Ident{Name: "x"}, R: &IntLit{Text: "0"}},
	}
	out := Print(s)
	if !strings.Contains(out, "do") || !strings.Contains(out, "while (x > 0);") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintWhile(t *testing.T) {
	s := &While{Cond: &Ident{Name: "p"}, Body: &Empty{}}
	out := Print(s)
	if !strings.Contains(out, "while (p)") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintIfElse(t *testing.T) {
	s := &If{
		Cond: &Ident{Name: "c"},
		Then: &Return{X: &IntLit{Text: "1"}},
		Else: &Return{},
	}
	out := Print(s)
	if !strings.Contains(out, "if (c)") || !strings.Contains(out, "else") ||
		!strings.Contains(out, "return 1;") || !strings.Contains(out, "return;") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintBreakContinueEmpty(t *testing.T) {
	out := Print(&Block{Stmts: []Stmt{&Break{}, &Continue{}, &Empty{}}})
	for _, want := range []string{"break;", "continue;", ";"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestPrintDeclWithInitList(t *testing.T) {
	d := &Decl{
		Type:      &TypeSpec{Names: []string{"int"}},
		Name:      "a",
		ArrayDims: []Expr{&IntLit{Text: "3"}},
		Init:      &InitList{Elems: []Expr{&IntLit{Text: "1"}, &IntLit{Text: "2"}, &IntLit{Text: "3"}}},
	}
	out := Print(&File{Items: []Node{d}})
	if !strings.Contains(out, "int a[3] = {1, 2, 3};") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintUnsizedArrayDim(t *testing.T) {
	d := &Decl{Type: &TypeSpec{Names: []string{"char"}}, Name: "s", ArrayDims: []Expr{nil}}
	if got := declString(d); got != "char s[]" {
		t.Errorf("got %q", got)
	}
}

func TestTypeStringUnion(t *testing.T) {
	ts := &TypeSpec{Struct: "u", Union: true, Ptr: 2}
	if got := typeString(ts); got != "union u **" {
		t.Errorf("got %q", got)
	}
	if got := typeString(nil); got != "int" {
		t.Errorf("nil type = %q", got)
	}
}

func TestPrintTypedefDecl(t *testing.T) {
	d := &Decl{Type: &TypeSpec{Names: []string{"unsigned", "long"}}, Name: "mytype", IsTypedef: true}
	if got := declString(d); got != "typedef unsigned long mytype" {
		t.Errorf("got %q", got)
	}
}

func TestPrintFuncDefParams(t *testing.T) {
	fd := &FuncDef{
		ReturnType: &TypeSpec{Names: []string{"double"}},
		Name:       "f",
		Params: []*Decl{
			{Type: &TypeSpec{Names: []string{"double"}, Ptr: 1}, Name: "v"},
			{Type: &TypeSpec{Names: []string{"int"}}, Name: "n"},
		},
		Body: &Block{Stmts: []Stmt{&Return{X: &ArrayRef{Arr: &Ident{Name: "v"}, Index: &IntLit{Text: "0"}}}}},
	}
	out := Print(fd)
	if !strings.Contains(out, "double f(double *v, int n) {") {
		t.Errorf("out = %q", out)
	}
}

func TestPrintSizeofExprForm(t *testing.T) {
	s := &Sizeof{X: &Ident{Name: "x"}}
	if got := PrintExpr(s); got != "sizeof(x)" {
		t.Errorf("got %q", got)
	}
}

func TestPrintAssignNested(t *testing.T) {
	// Assignment as a subexpression is parenthesized.
	e := &BinaryOp{Op: "+",
		L: &Assign{Op: "=", L: &Ident{Name: "x"}, R: &IntLit{Text: "1"}},
		R: &IntLit{Text: "2"}}
	if got := PrintExpr(e); got != "(x = 1) + 2" {
		t.Errorf("got %q", got)
	}
}

func TestPrintCommaInCall(t *testing.T) {
	// Comma operator as an argument is parenthesized.
	c := &FuncCall{Fun: &Ident{Name: "f"}, Args: []Expr{
		&Comma{L: &Ident{Name: "a"}, R: &Ident{Name: "b"}},
	}}
	if got := PrintExpr(c); got != "f((a, b))" {
		t.Errorf("got %q", got)
	}
}

func TestPrintPragmaWithoutStmt(t *testing.T) {
	out := Print(&PragmaStmt{Text: "pragma omp barrier"})
	if !strings.Contains(out, "#pragma omp barrier") {
		t.Errorf("out = %q", out)
	}
}

func TestSerializeDoWhileBreakContinue(t *testing.T) {
	s := &DoWhile{
		Body: &Block{Stmts: []Stmt{&Break{}, &Continue{}, &Empty{}}},
		Cond: &Ident{Name: "c"},
	}
	got := Serialize(s)
	for _, want := range []string{"DoWhile:", "Break:", "Continue:", "EmptyStatement:", "Compound:"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestSerializeFuncDefAndDecl(t *testing.T) {
	fd := &FuncDef{
		ReturnType: &TypeSpec{Names: []string{"int"}},
		Name:       "g",
		Params:     []*Decl{{Type: &TypeSpec{Names: []string{"int"}}, Name: "x"}},
		Body:       &Block{Stmts: []Stmt{&Return{X: &Ident{Name: "x"}}}},
	}
	got := Serialize(fd)
	for _, want := range []string{"FuncDef:", "Decl: g", "Decl: x", "TypeDecl: int", "Return:"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestSerializeTernarySizeofInitList(t *testing.T) {
	n := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Ternary{Cond: &Ident{Name: "c"}, Then: &IntLit{Text: "1"}, Else: &IntLit{Text: "2"}}},
		&ExprStmt{X: &Sizeof{X: &Ident{Name: "v"}}},
		&DeclStmt{Decls: []*Decl{{
			Type: &TypeSpec{Names: []string{"int"}}, Name: "a",
			ArrayDims: []Expr{&IntLit{Text: "2"}},
			Init:      &InitList{Elems: []Expr{&IntLit{Text: "1"}}},
		}}},
	}}
	got := Serialize(n)
	for _, want := range []string{"TernaryOp:", "UnaryOp: sizeof", "InitList:", "ArrayDecl:"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestSerializePragmaAndCast(t *testing.T) {
	n := &PragmaStmt{Text: "pragma omp parallel for",
		Stmt: &ExprStmt{X: &Cast{Type: &TypeSpec{Names: []string{"ssize_t"}}, X: &Ident{Name: "n"}}}}
	got := Serialize(n)
	if !strings.Contains(got, "Pragma:") || !strings.Contains(got, "Cast: ssize_t") {
		t.Errorf("got %q", got)
	}
}

func TestSerializeCharAndString(t *testing.T) {
	n := &Block{Stmts: []Stmt{
		&ExprStmt{X: &CharLit{Text: "'a'"}},
		&ExprStmt{X: &StrLit{Text: `"hi"`}},
		&ExprStmt{X: &FloatLit{Text: "2.5"}},
	}}
	got := Serialize(n)
	for _, want := range []string{"Constant: char, 'a'", `Constant: string, "hi"`, "Constant: float, 2.5"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestSerializeCommaExprList(t *testing.T) {
	got := Serialize(&Comma{L: &Ident{Name: "a"}, R: &Ident{Name: "b"}})
	if !strings.HasPrefix(got, "ExprList:") {
		t.Errorf("got %q", got)
	}
}
