package tokenize

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"pragformer/internal/ckpt"
)

// Vocabulary persistence: one token per line, specials first, so the file
// doubles as a human-readable token inventory. Both cmd/pragformer (which
// writes vocabularies next to trained models) and cmd/serve (which loads
// them back) go through these helpers, keeping the format in one place.

// Save writes the vocabulary one token per line in id order.
func (v *Vocab) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < v.Size(); i++ {
		if _, err := fmt.Fprintln(bw, v.Token(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the vocabulary to a file path atomically (temp file +
// rename), so a failed save — including a failed Close — never clobbers an
// existing vocabulary the serving layer may be loading.
func (v *Vocab) SaveFile(path string) error {
	return ckpt.WriteFileAtomic(path, v.Save)
}

// LoadVocab reads a vocabulary written by Save, restoring the exact id
// assignment.
func LoadVocab(r io.Reader) (*Vocab, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) <= NumSpecials {
		return nil, fmt.Errorf("tokenize: vocabulary file too short (%d lines)", len(lines))
	}
	for i, want := range []string{"[PAD]", "[UNK]", "[CLS]", "[MASK]"} {
		if lines[i] != want {
			return nil, fmt.Errorf("tokenize: vocabulary line %d is %q, want special %q", i, lines[i], want)
		}
	}
	v := &Vocab{byToken: make(map[string]int, len(lines)), tokens: lines}
	for i := NumSpecials; i < len(lines); i++ {
		if _, dup := v.byToken[lines[i]]; dup {
			return nil, fmt.Errorf("tokenize: duplicate vocabulary token %q", lines[i])
		}
		v.byToken[lines[i]] = i
	}
	return v, nil
}

// LoadVocabFile reads a vocabulary from a file path.
func LoadVocabFile(path string) (*Vocab, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadVocab(f)
}
