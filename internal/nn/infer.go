package nn

import (
	"math"

	"pragformer/internal/tensor"
)

// Inference-only batched forwards. The training forwards in nn.go and
// attention.go return per-layer caches because Backward needs them; at
// serving time those caches are pure overhead — per call they allocate a
// dozen sequence-sized matrices that die immediately. The Apply*/Infer*
// family below runs the identical arithmetic (bit-exact with the training
// forwards, which the core batch tests assert) over a *ragged batch* of
// sequences stacked row-wise into one matrix, with every intermediate drawn
// from the tensor buffer pool and no cache construction.
//
// Ragged layout: B sequences of lengths T_0..T_{B-1} are stacked into a
// (ΣT_i)×D matrix; offs has length B+1 and sequence i owns rows
// [offs[i], offs[i+1]). Row-local ops (Linear, LayerNorm, ReLU) ignore the
// boundaries; attention respects them, mixing rows only within a sequence.
//
// Stacking also feeds the parallel kernel layer better: one MatMul over
// ΣT rows crosses tensor's parallel threshold where B separate T-row
// products would not, so batches fan out across the worker pool on
// multi-core hosts.

// ForwardBatchInto embeds the ragged batch seqs into dst, which must have
// ΣT_i rows. Positional embeddings restart at 0 for each sequence. dst is
// fully assigned.
func (e *Embedding) ForwardBatchInto(dst *tensor.Matrix, seqs [][]int) {
	r := 0
	for _, ids := range seqs {
		for t, idx := range ids {
			row := dst.Row(r)
			copy(row, e.Tok.W.Row(idx))
			tensor.Axpy(1, e.Pos.W.Row(t), row)
			r++
		}
	}
}

// maxSeqLen returns the longest sequence length in a ragged batch layout.
func maxSeqLen(offs []int) int {
	maxT := 1 // never zero: scratch slicing needs a non-empty buffer
	for s := 0; s+1 < len(offs); s++ {
		if T := offs[s+1] - offs[s]; T > maxT {
			maxT = T
		}
	}
	return maxT
}

// ApplyInto computes dst = x·W + b without retaining a cache, via the same
// fused bias kernel Forward uses (bit-identical). dst must not alias x; it
// is fully assigned.
func (l *Linear) ApplyInto(dst, x *tensor.Matrix) {
	tensor.MatMulBiasInto(dst, x, l.W.W, l.B.W.Row(0))
}

// ApplyReLUInto computes dst = max(0, x·W + b) with the activation folded
// into the kernel's store loop — the FFN/classifier hidden-layer epilogue.
// Value-identical to ApplyInto followed by ReLUInPlace. dst must not alias
// x; it is fully assigned.
func (l *Linear) ApplyReLUInto(dst, x *tensor.Matrix) {
	tensor.MatMulBiasReLUInto(dst, x, l.W.W, l.B.W.Row(0))
}

// ApplyInto normalizes x row-wise into dst without retaining a cache,
// mirroring Forward's arithmetic exactly. dst may alias x.
func (ln *LayerNorm) ApplyInto(dst, x *tensor.Matrix) {
	d := x.Cols
	g := ln.Gamma.W.Row(0)
	b := ln.Beta.W.Row(0)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(d)
		vr := 0.0
		for _, v := range row {
			dv := v - mean
			vr += dv * dv
		}
		vr /= float64(d)
		inv := 1 / math.Sqrt(vr+ln.Eps)
		tensor.NormScaleInto(dst.Row(i), row, mean, inv, g, b)
	}
}

// ReLUInPlace applies max(0, x) elementwise without recording a mask.
func ReLUInPlace(x *tensor.Matrix) {
	for i, v := range x.Data {
		if v <= 0 {
			x.Data[i] = 0
		}
	}
}

// ApplyBatchInto computes self-attention over the ragged batch x into dst
// (same shape), attending only within each sequence. dst is fully assigned.
func (m *MultiHeadAttention) ApplyBatchInto(dst, x *tensor.Matrix, offs []int) {
	dh := m.D / m.Heads
	scale := 1 / math.Sqrt(float64(dh))
	q := tensor.GetMatrixDirty(x.Rows, m.D)
	k := tensor.GetMatrixDirty(x.Rows, m.D)
	v := tensor.GetMatrixDirty(x.Rows, m.D)
	m.WQ.ApplyInto(q, x)
	m.WK.ApplyInto(k, x)
	m.WV.ApplyInto(v, x)
	// Dirty is safe: every row belongs to some non-empty sequence and the
	// strided mix fully assigns those rows.
	concat := tensor.GetMatrixDirty(x.Rows, m.D)

	// One score scratch sized for all heads of the longest sequence serves
	// every sequence of the batch as an (H·T)×T view — per-sequence pool
	// traffic for matrices too small to pool was the batch path's last
	// allocation hot spot.
	maxT := maxSeqLen(offs)
	scoresBuf := tensor.GetVecDirty(m.Heads * maxT * maxT)
	for s := 0; s+1 < len(offs); s++ {
		lo, hi := offs[s], offs[s+1]
		T := hi - lo
		if T == 0 {
			continue
		}
		// All heads of the sequence in one strided batched GEMM each:
		// scores, softmax over every head-row, then the value mix.
		qs := tensor.Matrix{Rows: T, Cols: m.D, Data: q.Data[lo*m.D : hi*m.D]}
		ks := tensor.Matrix{Rows: T, Cols: m.D, Data: k.Data[lo*m.D : hi*m.D]}
		vs := tensor.Matrix{Rows: T, Cols: m.D, Data: v.Data[lo*m.D : hi*m.D]}
		cs := tensor.Matrix{Rows: T, Cols: m.D, Data: concat.Data[lo*m.D : hi*m.D]}
		scores := tensor.Matrix{Rows: m.Heads * T, Cols: T, Data: scoresBuf[:m.Heads*T*T]}
		tensor.AttnScoresInto(&scores, &qs, &ks, m.Heads, scale)
		tensor.RowSoftmax(&scores)
		tensor.AttnMixInto(&cs, &scores, &vs, m.Heads)
	}
	tensor.PutVec(scoresBuf)
	m.WO.ApplyInto(dst, concat)
	tensor.PutMatrix(concat)
	tensor.PutMatrix(v)
	tensor.PutMatrix(k)
	tensor.PutMatrix(q)
}

// ApplyCLSInto computes only the first attention output row of each
// sequence (the [CLS] position) into dst, which must be B×D for B
// sequences. Queries are needed for the CLS rows alone, but keys and values
// still span every row, so the K/V projections remain full-width — the
// savings are the Q and output projections and the (T²−T) score rows per
// head. Bit-exact with row offs[s] of ApplyBatchInto's result.
func (m *MultiHeadAttention) ApplyCLSInto(dst, x *tensor.Matrix, offs []int) {
	B := len(offs) - 1
	dh := m.D / m.Heads
	scale := 1 / math.Sqrt(float64(dh))
	k := tensor.GetMatrixDirty(x.Rows, m.D)
	v := tensor.GetMatrixDirty(x.Rows, m.D)
	m.WK.ApplyInto(k, x)
	m.WV.ApplyInto(v, x)

	xcls := tensor.GetMatrixDirty(B, m.D)
	for s := 0; s < B; s++ {
		copy(xcls.Row(s), x.Row(offs[s]))
	}
	q := tensor.GetMatrixDirty(B, m.D)
	m.WQ.ApplyInto(q, xcls)
	tensor.PutMatrix(xcls)

	concat := tensor.GetMatrix(B, m.D) // zeroed: empty sequences keep zero rows
	scoresBuf := tensor.GetVecDirty(m.Heads * maxSeqLen(offs))
	for s := 0; s < B; s++ {
		lo, hi := offs[s], offs[s+1]
		T := hi - lo
		if T == 0 {
			continue
		}
		// One query row per head: scores is H×T (Tq = 1 in the strided
		// batched layout), mixed into the single concat row.
		qs := tensor.Matrix{Rows: 1, Cols: m.D, Data: q.Data[s*m.D : (s+1)*m.D]}
		ks := tensor.Matrix{Rows: T, Cols: m.D, Data: k.Data[lo*m.D : hi*m.D]}
		vs := tensor.Matrix{Rows: T, Cols: m.D, Data: v.Data[lo*m.D : hi*m.D]}
		cs := tensor.Matrix{Rows: 1, Cols: m.D, Data: concat.Data[s*m.D : (s+1)*m.D]}
		scores := tensor.Matrix{Rows: m.Heads, Cols: T, Data: scoresBuf[:m.Heads*T]}
		tensor.AttnScoresInto(&scores, &qs, &ks, m.Heads, scale)
		tensor.RowSoftmax(&scores)
		tensor.AttnMixInto(&cs, &scores, &vs, m.Heads)
	}
	tensor.PutVec(scoresBuf)
	m.WO.ApplyInto(dst, concat)
	tensor.PutMatrix(concat)
	tensor.PutMatrix(v)
	tensor.PutMatrix(k)
	tensor.PutMatrix(q)
}

// InferBatch runs the encoder block over the ragged batch in eval mode
// (dropout is the identity), returning a pooled matrix the caller must
// release with tensor.PutMatrix. x is left intact.
func (b *EncoderBlock) InferBatch(x *tensor.Matrix, offs []int) *tensor.Matrix {
	rows, d := x.Rows, x.Cols
	n1 := tensor.GetMatrixDirty(rows, d)
	b.LN1.ApplyInto(n1, x)
	a := tensor.GetMatrixDirty(rows, d)
	b.Attn.ApplyBatchInto(a, n1, offs)
	h := n1 // n1 is dead after attention; reuse it for the residual
	tensor.AddInto(h, x, a)

	n2 := a // a is dead after the residual
	b.LN2.ApplyInto(n2, h)
	hid := tensor.GetMatrixDirty(rows, b.FF.L1.W.W.Cols)
	b.FF.L1.ApplyReLUInto(hid, n2) // fused bias+ReLU epilogue
	f := n2 // n2 is dead after the first FFN layer
	b.FF.L2.ApplyInto(f, hid)
	tensor.PutMatrix(hid)

	out := tensor.GetMatrixDirty(rows, d)
	tensor.AddInto(out, h, f)
	tensor.PutMatrix(f)
	tensor.PutMatrix(h)
	return out
}

// InferCLS runs the encoder block in eval mode computing only the [CLS]
// output row of each sequence, returning a pooled B×D matrix the caller
// must release. Only valid as the *last* block of a classifier stack: rows
// other than CLS are never produced, so a subsequent block's attention
// would see garbage. Bit-exact with the CLS rows of InferBatch.
func (b *EncoderBlock) InferCLS(x *tensor.Matrix, offs []int) *tensor.Matrix {
	B := len(offs) - 1
	d := x.Cols
	n1 := tensor.GetMatrixDirty(x.Rows, d)
	b.LN1.ApplyInto(n1, x)
	a := tensor.GetMatrixDirty(B, d)
	b.Attn.ApplyCLSInto(a, n1, offs)
	tensor.PutMatrix(n1)

	h := tensor.GetMatrixDirty(B, d)
	for s := 0; s < B; s++ {
		xr := x.Row(offs[s])
		ar := a.Row(s)
		hr := h.Row(s)
		for j := range hr {
			hr[j] = xr[j] + ar[j]
		}
	}
	n2 := a // a is dead after the residual
	b.LN2.ApplyInto(n2, h)
	hid := tensor.GetMatrixDirty(B, b.FF.L1.W.W.Cols)
	b.FF.L1.ApplyReLUInto(hid, n2) // fused bias+ReLU epilogue
	f := n2
	b.FF.L2.ApplyInto(f, hid)
	tensor.PutMatrix(hid)

	out := tensor.GetMatrixDirty(B, d)
	tensor.AddInto(out, h, f)
	tensor.PutMatrix(f)
	tensor.PutMatrix(h)
	return out
}
