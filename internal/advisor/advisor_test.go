package advisor

import (
	"strings"
	"testing"

	"pragformer/internal/core"
	"pragformer/internal/corpus"
	"pragformer/internal/dataset"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
	"pragformer/internal/train"
)

// trainTask fits one small classifier for a task over a shared corpus.
func trainTask(t *testing.T, c *corpus.Corpus, task dataset.Task, v *tokenize.Vocab) *core.PragFormer {
	t.Helper()
	var split dataset.Split
	if task == dataset.TaskDirective {
		split = dataset.Directive(c, dataset.Options{Seed: 1})
	} else {
		split = dataset.Clause(c, task, dataset.Options{Seed: 1, Balance: true})
	}
	encode := func(ins []dataset.Instance) []train.Example {
		out := make([]train.Example, len(ins))
		for i, in := range ins {
			toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = train.Example{IDs: v.Encode(toks, 64), Label: in.Label}
		}
		return out
	}
	m, err := core.New(core.Config{Vocab: v.Size(), MaxLen: 64, D: 32, Heads: 4, Layers: 1}, int64(10+task))
	if err != nil {
		t.Fatal(err)
	}
	train.Fit(m, encode(split.Train), encode(split.Valid), train.Config{
		Epochs: 4, BatchSize: 16, LR: 1.5e-3, ClipNorm: 1, Seed: int64(task),
	})
	return m
}

// sharedModels trains the three classifiers once for the package.
var sharedModels *Models

func models(t *testing.T) *Models {
	t.Helper()
	if testing.Short() {
		t.Skip("advisor models are slow to train")
	}
	if sharedModels != nil {
		return sharedModels
	}
	c := corpus.Generate(corpus.Config{Seed: 6, Total: 800})
	split := dataset.Directive(c, dataset.Options{Seed: 1})
	var seqs [][]string
	for _, in := range split.Train {
		toks, err := tokenize.Extract(in.Rec.Code, tokenize.Text)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, toks)
	}
	v := tokenize.BuildVocab(seqs, 1)
	sharedModels = &Models{
		Directive: trainTask(t, c, dataset.TaskDirective, v),
		Private:   trainTask(t, c, dataset.TaskPrivate, v),
		Reduction: trainTask(t, c, dataset.TaskReduction, v),
		Vocab:     v,
		MaxLen:    64,
	}
	return sharedModels
}

func TestSuggestReduction(t *testing.T) {
	m := models(t)
	s, err := m.Suggest("for (i = 0; i < n; i++) sum += a[i] * b[i];")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Parallelize {
		t.Fatalf("reduction loop not parallelized (p=%.2f, notes %v)", s.Probability, s.Notes)
	}
	if s.Directive == nil || !s.Directive.HasReduction() {
		t.Errorf("directive = %v, want reduction clause", s.Directive)
	}
	if s.Confidence < AnalysisAgrees {
		t.Errorf("confidence = %v, analysis should agree", s.Confidence)
	}
}

func TestSuggestPrivate(t *testing.T) {
	m := models(t)
	src := "for (i = 0; i < n; i++) for (j = 0; j < n; j++) x[i] = x[i] + A[i][j] * y[j];"
	s, err := m.Suggest(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Parallelize {
		t.Fatalf("matvec not parallelized (p=%.2f)", s.Probability)
	}
	if s.Directive == nil || !s.Directive.HasPrivate() {
		t.Errorf("directive = %v, want private(j)", s.Directive)
	}
	annotated := s.Annotate(src)
	if !strings.HasPrefix(annotated, "#pragma omp parallel for") {
		t.Errorf("annotated = %q", annotated)
	}
}

func TestSuggestSerialLoop(t *testing.T) {
	m := models(t)
	s, err := m.Suggest("for (i = 1; i < n; i++) a[i] = a[i-1] + 1;")
	if err != nil {
		t.Fatal(err)
	}
	if s.Parallelize {
		t.Fatalf("recurrence parallelized (p=%.2f)", s.Probability)
	}
	if s.Directive != nil {
		t.Error("directive on serial loop")
	}
	if got := s.Annotate("x"); got != "x" {
		t.Errorf("Annotate changed serial code: %q", got)
	}
}

func TestSuggestIOLoop(t *testing.T) {
	m := models(t)
	s, err := m.Suggest(`for (i = 0; i < n; i++) printf("%d", a[i]);`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Parallelize {
		t.Fatalf("I/O loop parallelized (p=%.2f)", s.Probability)
	}
}

func TestSuggestErrors(t *testing.T) {
	var empty Models
	if _, err := empty.Suggest("for (i = 0; i < n; i++) a[i] = 0;"); err == nil {
		t.Fatal("expected error without models")
	}
	m := models(t)
	if _, err := m.Suggest("for (i = 0; i < `n`"); err == nil {
		t.Fatal("expected error on unlexable input")
	}
}

// TestSuggestBatchMatchesSuggest asserts that batching changes nothing: a
// mixed batch (positives, negatives, an unlexable snippet) must reproduce
// the per-snippet Suggest results exactly.
func TestSuggestBatchMatchesSuggest(t *testing.T) {
	m := models(t)
	codes := []string{
		"for (i = 0; i < n; i++) sum += a[i] * b[i];",
		"for (i = 1; i < n; i++) a[i] = a[i-1] + 1;",
		"for (i = 0; i < `n`", // unlexable
		"for (i = 0; i < n; i++) for (j = 0; j < n; j++) x[i] = x[i] + A[i][j] * y[j];",
		`for (i = 0; i < n; i++) printf("%d", a[i]);`,
	}
	items, err := m.SuggestBatch(codes)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(codes) {
		t.Fatalf("got %d items for %d codes", len(items), len(codes))
	}
	for i, code := range codes {
		want, wantErr := m.Suggest(code)
		got, gotErr := items[i].Suggestion, items[i].Err
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("snippet %d: err %v vs single %v", i, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Parallelize != want.Parallelize || got.Probability != want.Probability ||
			got.Confidence != want.Confidence {
			t.Errorf("snippet %d: batch %+v != single %+v", i, got, want)
		}
		if (got.Directive == nil) != (want.Directive == nil) {
			t.Errorf("snippet %d: directive presence mismatch", i)
		} else if got.Directive != nil && got.Directive.String() != want.Directive.String() {
			t.Errorf("snippet %d: directive %q != %q", i, got.Directive, want.Directive)
		}
		if strings.Join(got.Notes, "|") != strings.Join(want.Notes, "|") {
			t.Errorf("snippet %d: notes %v != %v", i, got.Notes, want.Notes)
		}
	}
}

// TestSuggestBatchEmpty covers the degenerate batch.
func TestSuggestBatchEmpty(t *testing.T) {
	m := models(t)
	items, err := m.SuggestBatch(nil)
	if err != nil || len(items) != 0 {
		t.Fatalf("SuggestBatch(nil) = %v, %v", items, err)
	}
}

// TestNoCorroborate asserts the S2S pass can be disabled: confidence stays
// below ComParAgrees and the stub comparator is never consulted.
func TestNoCorroborate(t *testing.T) {
	base := models(t)
	m := &Models{
		Directive: base.Directive, Private: base.Private, Reduction: base.Reduction,
		Vocab: base.Vocab, MaxLen: base.MaxLen,
		NoCorroborate: true,
		ComPar:        panicCompiler{},
	}
	s, err := m.Suggest("for (i = 0; i < n; i++) sum += a[i] * b[i];")
	if err != nil {
		t.Fatal(err)
	}
	if s.Confidence == ComParAgrees {
		t.Error("corroboration ran despite NoCorroborate")
	}
}

// panicCompiler fails the test if the advisor consults it.
type panicCompiler struct{}

func (panicCompiler) Name() string { return "panic" }
func (panicCompiler) Compile(string) (s2s.Result, error) {
	panic("advisor consulted the comparator with NoCorroborate set")
}

func TestConfidenceString(t *testing.T) {
	if ModelOnly.String() == "" || AnalysisAgrees.String() == "" || ComParAgrees.String() == "" {
		t.Error("empty confidence names")
	}
	if ModelOnly.String() == ComParAgrees.String() {
		t.Error("confidence names collide")
	}
}

func TestAnalyzeHelper(t *testing.T) {
	if analyze("not c code {{{") != nil {
		t.Error("analyze should be nil on parse failure")
	}
	if analyze("x = 1;") != nil {
		t.Error("analyze should be nil without a loop")
	}
	a := analyze("for (i = 0; i < n; i++) a[i] = 0;")
	if a == nil || !a.Parallelizable {
		t.Error("simple loop should analyze parallelizable")
	}
}
