// Package pragma models OpenMP directives for for-loops: the subset the
// paper's corpus keeps (`#pragma omp parallel for` with private,
// firstprivate, reduction, schedule, nowait and collapse clauses), with a
// parser for pragma lines and a canonical printer.
package pragma

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ScheduleKind enumerates OpenMP loop schedules.
type ScheduleKind int

const (
	// ScheduleNone means no schedule clause (OpenMP defaults to static).
	ScheduleNone ScheduleKind = iota
	// ScheduleStatic divides iterations into equal contiguous chunks.
	ScheduleStatic
	// ScheduleDynamic hands out chunks on demand — the paper's remedy for
	// unbalanced loops that S2S compilers miss.
	ScheduleDynamic
	// ScheduleGuided uses exponentially shrinking chunks.
	ScheduleGuided
)

// String returns the OpenMP spelling of the schedule kind.
func (k ScheduleKind) String() string {
	switch k {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return ""
	}
}

// Reduction is a single reduction clause: an operator and its variables.
type Reduction struct {
	Op   string // one of + * - & | ^ && || max min
	Vars []string
}

// Directive is a parsed `#pragma omp parallel for` line.
type Directive struct {
	ParallelFor  bool
	Private      []string
	FirstPrivate []string
	Shared       []string
	Reductions   []Reduction
	Schedule     ScheduleKind
	Chunk        int // 0 when unspecified
	NoWait       bool
	Collapse     int // 0 when unspecified
}

// HasPrivate reports whether the directive carries any private or
// firstprivate clause (the paper's RQ2 private task).
func (d *Directive) HasPrivate() bool {
	return d != nil && (len(d.Private) > 0 || len(d.FirstPrivate) > 0)
}

// HasReduction reports whether the directive carries a reduction clause
// (the paper's RQ2 reduction task).
func (d *Directive) HasReduction() bool {
	return d != nil && len(d.Reductions) > 0
}

// validReductionOps are the operators OpenMP accepts in reduction clauses.
var validReductionOps = map[string]bool{
	"+": true, "*": true, "-": true, "&": true, "|": true, "^": true,
	"&&": true, "||": true, "max": true, "min": true,
}

// IsReductionOp reports whether op may appear in a reduction clause.
func IsReductionOp(op string) bool { return validReductionOps[op] }

// String prints the directive as a canonical pragma line, with clause order
// and variable order normalized so equal directives print identically.
func (d *Directive) String() string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("#pragma omp parallel for")
	if len(d.Private) > 0 {
		vars := append([]string(nil), d.Private...)
		sort.Strings(vars)
		fmt.Fprintf(&b, " private(%s)", strings.Join(vars, ", "))
	}
	if len(d.FirstPrivate) > 0 {
		vars := append([]string(nil), d.FirstPrivate...)
		sort.Strings(vars)
		fmt.Fprintf(&b, " firstprivate(%s)", strings.Join(vars, ", "))
	}
	if len(d.Shared) > 0 {
		vars := append([]string(nil), d.Shared...)
		sort.Strings(vars)
		fmt.Fprintf(&b, " shared(%s)", strings.Join(vars, ", "))
	}
	reds := append([]Reduction(nil), d.Reductions...)
	sort.Slice(reds, func(i, j int) bool { return reds[i].Op < reds[j].Op })
	for _, r := range reds {
		vars := append([]string(nil), r.Vars...)
		sort.Strings(vars)
		fmt.Fprintf(&b, " reduction(%s:%s)", r.Op, strings.Join(vars, ", "))
	}
	if d.Schedule != ScheduleNone {
		if d.Chunk > 0 {
			fmt.Fprintf(&b, " schedule(%s,%d)", d.Schedule, d.Chunk)
		} else {
			fmt.Fprintf(&b, " schedule(%s)", d.Schedule)
		}
	}
	if d.Collapse > 0 {
		fmt.Fprintf(&b, " collapse(%d)", d.Collapse)
	}
	if d.NoWait {
		b.WriteString(" nowait")
	}
	return b.String()
}

// Parse parses a pragma line. Accepted spellings include a leading "#",
// a leading "pragma", or just "omp parallel for ...". Returns nil (no error)
// for omp pragmas that are not parallel-for directives (e.g. `omp critical`),
// mirroring the corpus exclusion criteria; returns an error for lines that
// are not omp pragmas at all or that have malformed clauses.
func Parse(line string) (*Directive, error) {
	s := strings.TrimSpace(line)
	s = strings.TrimPrefix(s, "#")
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "pragma")
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "omp") {
		return nil, fmt.Errorf("pragma: not an omp pragma: %q", line)
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, "omp"))

	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	p := &lineParser{toks: toks}

	d := &Directive{}
	if !p.accept("parallel") {
		return nil, nil // omp but not a loop directive: excluded from corpus
	}
	if !p.accept("for") {
		return nil, nil // plain `omp parallel` region: excluded
	}
	d.ParallelFor = true

	for !p.done() {
		name := p.next()
		switch name {
		case "private", "firstprivate", "shared":
			vars, err := p.parenList()
			if err != nil {
				return nil, err
			}
			switch name {
			case "private":
				d.Private = append(d.Private, vars...)
			case "firstprivate":
				d.FirstPrivate = append(d.FirstPrivate, vars...)
			case "shared":
				d.Shared = append(d.Shared, vars...)
			}
		case "reduction":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			op := p.next()
			// Two-token operators arrive split.
			if (op == "&" || op == "|") && p.peek() == op {
				op += p.next()
			}
			if !validReductionOps[op] {
				return nil, fmt.Errorf("pragma: invalid reduction operator %q", op)
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			var vars []string
			for {
				v := p.next()
				if v == "" {
					return nil, fmt.Errorf("pragma: unterminated reduction clause")
				}
				vars = append(vars, v)
				if p.peek() == "," {
					p.next()
					continue
				}
				break
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			d.Reductions = append(d.Reductions, Reduction{Op: op, Vars: vars})
		case "schedule":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			kind := p.next()
			switch kind {
			case "static":
				d.Schedule = ScheduleStatic
			case "dynamic":
				d.Schedule = ScheduleDynamic
			case "guided":
				d.Schedule = ScheduleGuided
			case "auto", "runtime":
				d.Schedule = ScheduleStatic // folded, rare in the corpus
			default:
				return nil, fmt.Errorf("pragma: unknown schedule kind %q", kind)
			}
			if p.peek() == "," {
				p.next()
				n, err := strconv.Atoi(p.next())
				if err != nil {
					return nil, fmt.Errorf("pragma: bad schedule chunk: %v", err)
				}
				d.Chunk = n
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case "collapse":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(p.next())
			if err != nil {
				return nil, fmt.Errorf("pragma: bad collapse count: %v", err)
			}
			d.Collapse = n
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case "nowait":
			d.NoWait = true
		case "default":
			// default(shared|none): parse and ignore.
			if err := p.expect("("); err != nil {
				return nil, err
			}
			p.next()
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case "num_threads", "if":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			depth := 1
			for depth > 0 && !p.done() {
				switch p.next() {
				case "(":
					depth++
				case ")":
					depth--
				}
			}
		default:
			return nil, fmt.Errorf("pragma: unknown clause %q", name)
		}
	}
	return d, nil
}

// Equal reports whether two directives are semantically identical (clause
// sets compared order-insensitively via the canonical printer).
func Equal(a, b *Directive) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.String() == b.String()
}

// lineParser is a trivial token cursor for pragma clause text.
type lineParser struct {
	toks []string
	pos  int
}

func (p *lineParser) done() bool { return p.pos >= len(p.toks) }

func (p *lineParser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *lineParser) next() string {
	t := p.peek()
	if !p.done() {
		p.pos++
	}
	return t
}

func (p *lineParser) accept(t string) bool {
	if p.peek() == t {
		p.pos++
		return true
	}
	return false
}

func (p *lineParser) expect(t string) error {
	if p.accept(t) {
		return nil
	}
	return fmt.Errorf("pragma: expected %q, got %q", t, p.peek())
}

// parenList parses "( a , b , c )" into its identifiers.
func (p *lineParser) parenList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var vars []string
	for {
		v := p.next()
		switch v {
		case "", ")":
			if len(vars) == 0 {
				return nil, fmt.Errorf("pragma: empty variable list")
			}
			if v == ")" {
				return vars, nil
			}
			return nil, fmt.Errorf("pragma: unterminated variable list")
		case ",":
			continue
		default:
			vars = append(vars, v)
		}
	}
}

// tokenize splits clause text into words, parens, commas, colons and
// operator characters.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')' || c == ',' || c == ':':
			toks = append(toks, string(c))
			i++
		case c == '+' || c == '*' || c == '-' || c == '&' || c == '|' || c == '^' ||
			c == '<' || c == '>' || c == '=' || c == '!' || c == '/' || c == '%' || c == '.':
			// Comparison/arithmetic characters appear inside if(...) guard
			// expressions; they tokenize as opaque single characters.
			toks = append(toks, string(c))
			i++
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'):
			j := i
			for j < len(s) && (s[j] == '_' || (s[j] >= 'a' && s[j] <= 'z') || (s[j] >= 'A' && s[j] <= 'Z') || (s[j] >= '0' && s[j] <= '9')) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("pragma: unexpected character %q", c)
		}
	}
	return toks, nil
}
