package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// The batcher is the engine's composable coalescing unit: one dispatcher
// goroutine collects calls of one kind into batches, a worker per replica
// run function executes them, and an LRU short-circuits repeats. The
// serving tier's router composes the same signals the batcher exports —
// queue depth, in-flight count, shed counter — into fleet-wide admission
// control.

// call is one queued request.
type call[P any, K comparable, R any] struct {
	payload P
	key     K
	res     chan R // buffered(1): the worker never blocks delivering
}

// runSet is one immutable generation of per-replica run functions. A hot
// reload publishes a fresh runSet through the batcher's atomic pointer;
// workers snapshot the set once per batch, so an in-flight batch finishes
// on the model it started with while the next batch picks up the swap.
type runSet[P any, R any] struct {
	gen  uint64
	runs []func([]P) []R
}

// batcher coalesces calls of one kind and fans batches across workers.
type batcher[P any, K comparable, R any] struct {
	queue    chan *call[P, K, R]
	work     chan []*call[P, K, R]
	cache    *lru[K, R]
	cur      atomic.Pointer[runSet[P, R]]
	maxBatch int
	maxWait  time.Duration
	shed     bool
	done     chan struct{}
	wg       *sync.WaitGroup

	requests  atomic.Uint64
	cacheHits atomic.Uint64
	batches   atomic.Uint64
	items     atomic.Uint64
	sheds     atomic.Uint64
	inflight  atomic.Int64
}

// newBatcher starts one dispatcher plus one worker per run function; all
// goroutines exit when done closes. queueDepth caps the request queue —
// the backpressure point: when shed is set, a full queue fails fast with
// ErrSaturated instead of blocking the caller.
func newBatcher[P any, K comparable, R any](
	maxBatch int, maxWait time.Duration, cacheSize, queueDepth int, shed bool,
	runs []func([]P) []R, done chan struct{}, wg *sync.WaitGroup,
) *batcher[P, K, R] {
	if queueDepth <= 0 {
		queueDepth = maxBatch * len(runs)
	}
	b := &batcher[P, K, R]{
		queue:    make(chan *call[P, K, R], queueDepth),
		work:     make(chan []*call[P, K, R]),
		cache:    newLRU[K, R](cacheSize),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		shed:     shed,
		done:     done,
		wg:       wg,
	}
	b.cur.Store(&runSet[P, R]{runs: runs}) // generation 0, matching the cache
	wg.Add(1 + len(runs))
	go b.dispatch()
	for r := range runs {
		go b.worker(r)
	}
	return b
}

// setRuns atomically swaps in a new generation of run functions and rolls
// the cache. The slice length must equal the worker count fixed at
// construction; callers serialize swaps (Engine.reloadMu).
func (b *batcher[P, K, R]) setRuns(runs []func([]P) []R) {
	next := &runSet[P, R]{gen: b.cur.Load().gen + 1, runs: runs}
	b.cur.Store(next)
	b.cache.reset(next.gen)
}

// dispatch coalesces queued calls into batches: the first call opens a
// window that closes at MaxBatch calls or after MaxWait, whichever first.
func (b *batcher[P, K, R]) dispatch() {
	defer b.wg.Done()
	for {
		var first *call[P, K, R]
		select {
		case first = <-b.queue:
		case <-b.done:
			return
		}
		batch := append(make([]*call[P, K, R], 0, b.maxBatch), first)
		timer := time.NewTimer(b.maxWait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case c := <-b.queue:
				batch = append(batch, c)
			case <-timer.C:
				break fill
			case <-b.done:
				timer.Stop()
				return
			}
		}
		timer.Stop()
		select {
		case b.work <- batch:
		case <-b.done:
			return
		}
	}
}

// worker executes batches with replica r's current run function and
// delivers per-call results. The runSet is snapshotted once per batch:
// results are cached under the snapshot's generation, so a batch that
// raced a reload cannot write stale results into the fresh cache.
func (b *batcher[P, K, R]) worker(r int) {
	defer b.wg.Done()
	for {
		select {
		case batch := <-b.work:
			rs := b.cur.Load()
			payloads := make([]P, len(batch))
			for i, c := range batch {
				payloads[i] = c.payload
			}
			results := rs.runs[r](payloads)
			b.batches.Add(1)
			b.items.Add(uint64(len(batch)))
			for i, c := range batch {
				b.cache.put(c.key, results[i], rs.gen)
				c.res <- results[i]
			}
		case <-b.done:
			return
		}
	}
}

// do submits one request and blocks for its result, the cache, ctx
// cancellation, or engine close. In shed mode a full queue returns
// ErrSaturated immediately — the engine's admission-control contract:
// callers (the HTTP layer, the tier router) translate it into 429 +
// Retry-After instead of letting latency collapse under overload.
func (b *batcher[P, K, R]) do(ctx context.Context, payload P, key K) (R, error) {
	var zero R
	b.requests.Add(1)
	if r, ok := b.cache.get(key); ok {
		b.cacheHits.Add(1)
		return r, nil
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	c := &call[P, K, R]{payload: payload, key: key, res: make(chan R, 1)}
	if b.shed {
		select {
		case b.queue <- c:
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-b.done:
			return zero, ErrClosed
		default:
			b.sheds.Add(1)
			return zero, ErrSaturated
		}
	} else {
		select {
		case b.queue <- c:
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-b.done:
			return zero, ErrClosed
		}
	}
	select {
	case r := <-c.res:
		return r, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		// A worker may have delivered concurrently with Close.
		select {
		case r := <-c.res:
			return r, nil
		default:
			return zero, ErrClosed
		}
	}
}

func (b *batcher[P, K, R]) stats() PathStats {
	return PathStats{
		Requests:   b.requests.Load(),
		CacheHits:  b.cacheHits.Load(),
		Batches:    b.batches.Load(),
		Items:      b.items.Load(),
		Sheds:      b.sheds.Load(),
		QueueDepth: len(b.queue),
		InFlight:   int(b.inflight.Load()),
	}
}
