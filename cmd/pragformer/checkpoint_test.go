package main

import (
	"os"
	"path/filepath"
	"testing"

	"pragformer/internal/corpus"
)

// TestTrainCheckpointResumeCLI is the command-level smoke of the
// checkpoint subsystem: a full run with -checkpoint, then the same command
// with -resume on the finished checkpoint, must produce byte-identical
// model artifacts (the resumed run has no epochs left, so it just restores
// and re-saves the same weights).
func TestTrainCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "omp.jsonl")
	c := corpus.Generate(corpus.Config{Seed: 3, Total: 60})
	if err := c.SaveFile(corpusPath); err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(dir, "run.ckpt")
	model1 := filepath.Join(dir, "m1.gob")
	model2 := filepath.Join(dir, "m2.gob")
	vocab1 := filepath.Join(dir, "v1.txt")
	vocab2 := filepath.Join(dir, "v2.txt")

	base := []string{
		"-corpus", corpusPath, "-task", "directive",
		"-epochs", "2", "-d", "8", "-heads", "2", "-layers", "1",
		"-seed", "7", "-checkpoint", ckptPath,
	}
	cmdTrain(append([]string{"-model", model1, "-vocab", vocab1}, base...))
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	cmdTrain(append([]string{"-model", model2, "-vocab", vocab2, "-resume"}, base...))

	m1, err := os.ReadFile(model1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := os.ReadFile(model2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) == 0 || string(m1) != string(m2) {
		t.Fatalf("resumed model artifact differs from original (%d vs %d bytes)", len(m1), len(m2))
	}
	v1, _ := os.ReadFile(vocab1)
	v2, _ := os.ReadFile(vocab2)
	if len(v1) == 0 || string(v1) != string(v2) {
		t.Fatal("resumed vocabulary artifact differs from original")
	}
}
