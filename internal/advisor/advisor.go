// Package advisor composes the paper's pieces into the full pipeline its
// §6 sketches: generating entire OpenMP directives. The three PragFormer
// classifiers decide *whether* a directive and which clause kinds are
// needed; the dependence analysis supplies the *variable names* for the
// clauses; and, following the paper's ComPar-combination proposal, an S2S
// result can be used to corroborate the suggestion.
//
// The pipeline is batch-first: SuggestBatch tokenizes every snippet, then
// runs each classifier exactly once over the whole batch through
// core.PredictBatch (three batched forwards instead of 3·N single ones),
// while the per-snippet dependence analysis and corroboration stay
// per-item. Suggest is the single-snippet convenience wrapper.
package advisor

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"pragformer/internal/cast"
	"pragformer/internal/core"
	"pragformer/internal/cparse"
	"pragformer/internal/dep"
	"pragformer/internal/lime"
	"pragformer/internal/pragma"
	"pragformer/internal/s2s"
	"pragformer/internal/tokenize"
)

// Models bundles the three task classifiers with their shared vocabulary.
// The classifiers are core.Backend values, so a bundle can run on the
// float64 reference backend, the int8 quantized backend, or a mix (e.g. a
// quantized directive classifier next to float clause classifiers) —
// WithBackend converts a whole bundle. Private and Reduction may be nil, in
// which case clause decisions fall back to the dependence analysis alone.
// The zero MaxLen means core.DefaultMaxLen. Models is safe for concurrent
// use by multiple goroutines once constructed: suggestions only read the
// classifiers.
type Models struct {
	Directive core.Backend
	Private   core.Backend
	Reduction core.Backend
	Vocab     *tokenize.Vocab
	MaxLen    int

	// ComPar is the S2S compiler consulted to corroborate positive
	// suggestions. Nil wires the default s2s.NewComPar trio on first use —
	// once per Models, not once per call.
	ComPar s2s.Compiler
	// NoCorroborate skips the S2S corroboration entirely; the tier then
	// never reaches TierCorroborated and Corroboration.S2S stays empty.
	// Serving paths that cannot afford the member-compiler passes set this.
	NoCorroborate bool
	// NoExplain skips the LIME attribution on disagreements (the
	// perturbation forwards dominate a disagreement's cost). Attributions
	// are then always empty.
	NoExplain bool
	// LimeSamples overrides the perturbation sample count for disagreement
	// attributions (default 120). Changing it changes attribution values, so
	// every entry point over one tree must use the same setting.
	LimeSamples int

	// OnStage, when set, receives the coarse per-batch stage timings after
	// every suggest call: "infer" (the batched classifier forwards) and
	// "corroborate" (dependence analysis, S2S compiles, LIME attribution).
	// Timing never influences verdicts — outputs stay byte-identical with
	// or without a hook. The staged call variants take an explicit hook
	// that overrides this field per call.
	OnStage func(stage string, d time.Duration)

	comparOnce sync.Once
}

// comparator returns the corroborating compiler, wiring the default lazily.
func (m *Models) comparator() s2s.Compiler {
	m.comparOnce.Do(func() {
		if m.ComPar == nil {
			m.ComPar = s2s.NewComPar()
		}
	})
	return m.ComPar
}

// EffectiveMaxLen returns the sequence cap suggestions encode with: MaxLen
// when set, core.DefaultMaxLen otherwise. Serving layers that encode
// snippets themselves must use the same cap.
func (m *Models) EffectiveMaxLen() int {
	if m.MaxLen > 0 {
		return m.MaxLen
	}
	return core.DefaultMaxLen
}

// WithBackend returns a bundle whose classifiers all run on the named
// compute backend. The empty name keeps the bundle as loaded.
// core.BackendFloat64 requires every classifier to already be float64 (an
// int8 artifact cannot be dequantized back into a training-grade model).
// core.BackendInt8 quantizes float classifiers in place of deep conversion
// — already-quantized ones pass through. The receiver is never mutated;
// converted bundles share the vocabulary and corroboration settings.
func (m *Models) WithBackend(name string) (*Models, error) {
	if name == "" {
		return m, nil
	}
	convert := func(b core.Backend) (core.Backend, error) {
		if b == nil || b.BackendName() == name {
			return b, nil
		}
		switch name {
		case core.BackendFloat64:
			return nil, fmt.Errorf("advisor: cannot serve an %s classifier on the %s backend",
				b.BackendName(), name)
		case core.BackendInt8:
			pf, ok := b.(*core.PragFormer)
			if !ok {
				return nil, fmt.Errorf("advisor: cannot quantize a %s classifier", b.BackendName())
			}
			return core.Quantize(pf)
		default:
			return nil, fmt.Errorf("advisor: unknown backend %q (%s|%s)",
				name, core.BackendFloat64, core.BackendInt8)
		}
	}
	out := &Models{
		Vocab: m.Vocab, MaxLen: m.MaxLen,
		ComPar: m.ComPar, NoCorroborate: m.NoCorroborate,
		NoExplain: m.NoExplain, LimeSamples: m.LimeSamples,
		OnStage: m.OnStage,
	}
	var err error
	if out.Directive, err = convert(m.Directive); err != nil {
		return nil, err
	}
	if out.Private, err = convert(m.Private); err != nil {
		return nil, err
	}
	if out.Reduction, err = convert(m.Reduction); err != nil {
		return nil, err
	}
	return out, nil
}

// Suggester is the batch-suggestion capability consumers program against:
// the repo scanner drives it with chunked batches of unique loop snippets,
// and the serving engine's /scan endpoint substitutes its micro-batching
// pipeline for the direct model path. Models is the canonical in-process
// implementation.
type Suggester interface {
	SuggestBatch(codes []string) ([]BatchItem, error)
}

// SnippetSuggester is the AST-threading extension of Suggester: callers
// that already parsed a snippet (the scanner holds every loop's *cast.For)
// hand the loop over so corroboration does not parse it a second time.
// Models implements it; the serving engine's string-keyed batcher does not
// and falls back to SuggestBatch.
type SnippetSuggester interface {
	SuggestSnippets(snippets []Snippet) ([]BatchItem, error)
}

var (
	_ Suggester        = (*Models)(nil)
	_ SnippetSuggester = (*Models)(nil)
)

// Tier grades how the model's positive verdict relates to the classical
// analyses. The ordering is meaningful for the agreeing tiers (higher =
// more independent support); TierDisagree sits below zero because it is not
// a weaker form of agreement but its own outcome — the paper's mined
// disagreement case.
type Tier int

const (
	// TierDisagree means the dependence analysis ran and found the loop NOT
	// parallelizable while the model says parallelize — the review case
	// (SARIF PF1003). The witness carries the analysis' reasons.
	TierDisagree Tier = iota - 1
	// TierModelOnly means only PragFormer supports the directive: the
	// dependence analysis could not run (unparseable snippet, no affine
	// loop header to analyze).
	TierModelOnly
	// TierAnalysisAgrees means the dependence analysis also finds the loop
	// parallelizable.
	TierAnalysisAgrees
	// TierCorroborated means an S2S member compiler independently inserted
	// a directive on top of analysis agreement — the paper's "verifying the
	// correctness" case. S2S results never upgrade a disagreement.
	TierCorroborated
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierCorroborated:
		return "model+analysis+compar"
	case TierAnalysisAgrees:
		return "model+analysis"
	case TierDisagree:
		return "disagree"
	default:
		return "model-only"
	}
}

// ParseTier inverts String. Unknown strings map to TierModelOnly, the
// tier that claims the least.
func ParseTier(s string) Tier {
	switch s {
	case "model+analysis+compar":
		return TierCorroborated
	case "model+analysis":
		return TierAnalysisAgrees
	case "disagree":
		return TierDisagree
	default:
		return TierModelOnly
	}
}

// CompilerVerdict is one S2S compiler's outcome on a snippet, kept as
// corroboration evidence.
type CompilerVerdict struct {
	// Compiler is the member name (Par4All, AutoPar, Cetus — or the
	// combined compiler's name when Models.ComPar is not a *s2s.ComPar).
	Compiler string
	// Compiled is false when the compiler's frontend rejected the snippet.
	Parallelized bool
	Compiled     bool
	// Detail carries the compile error or the decisive reason the compiler
	// declined to parallelize.
	Detail string
}

// Corroboration is the structured evidence behind a positive suggestion:
// instead of a single ratcheting confidence grade, it records what each
// analysis actually concluded so a disagreement is representable, not
// silently dropped.
type Corroboration struct {
	// Tier summarizes the evidence.
	Tier Tier
	// DepRan reports whether the dependence analysis produced a verdict
	// (the loop header was an analyzable normalized for-loop).
	DepRan bool
	// DepAgrees is the analysis' parallelizability verdict (meaningful only
	// when DepRan).
	DepAgrees bool
	// DepWitness carries the analysis' reasons — the carried-dependence or
	// reduction-pattern evidence from dep.Analysis.Reasons.
	DepWitness []string
	// Races carries the structured race witnesses behind a dependence
	// refutation: kind, both access sites (line/col within the canonical
	// snippet text), and the per-level direction/distance vector.
	Races []dep.Witness
	// Converted lists arrays whose refuting dependence the analysis rescued
	// via privatization or reduction recognition — loops that would have
	// been disagreements under the one-level engine.
	Converted []string
	// S2S holds the per-compiler corroboration verdicts (empty under
	// NoCorroborate).
	S2S []CompilerVerdict
}

// attach copies a dependence analysis' evidence into the corroboration.
func (c *Corroboration) attach(analysis *dep.Analysis) {
	if analysis == nil || !analysis.Header.OK {
		return
	}
	c.DepRan = true
	c.DepAgrees = analysis.Parallelizable
	c.DepWitness = append(c.DepWitness, analysis.Reasons...)
	c.Races = append(c.Races, analysis.Witnesses...)
	c.Converted = append(c.Converted, analysis.Converted...)
}

// Suggestion is the advisor's output for one snippet.
type Suggestion struct {
	// Parallelize is the RQ1 verdict.
	Parallelize bool
	// Probability is the directive classifier's positive probability.
	Probability float64
	// Directive is the generated pragma (nil when Parallelize is false).
	Directive *pragma.Directive
	// Corroboration is the evidence behind a positive verdict.
	Corroboration Corroboration
	// Attributions is the LIME token attribution computed for
	// disagreements (TierDisagree): which tokens pushed the directive
	// classifier toward "parallelize" against the analysis' verdict. Fitted
	// on the classifier's hard labels and seeded from the snippet's content
	// hash, so agreeing backends produce identical attributions. Entries
	// are in token order, one per (truncated) input token.
	Attributions []lime.Attribution
	// Notes explains the clause decisions.
	Notes []string
}

// Tier is shorthand for s.Corroboration.Tier.
func (s *Suggestion) Tier() Tier { return s.Corroboration.Tier }

// BatchItem is one snippet's outcome within a SuggestBatch call: either a
// suggestion or a per-snippet error (unlexable input), never both.
type BatchItem struct {
	Suggestion *Suggestion
	Err        error
}

// Snippet is one unit of advice: the source text plus, optionally, its
// already-parsed loop. A nil Loop means "parse Code on demand" — the
// single-snippet and HTTP paths; the scanner threads the loop it extracted
// so corroboration never re-parses on the scan hot path.
type Snippet struct {
	Code string
	Loop *cast.For
}

// Suggest runs the full pipeline over a single code snippet.
func (m *Models) Suggest(code string) (*Suggestion, error) {
	items, err := m.SuggestBatch([]string{code})
	if err != nil {
		return nil, err
	}
	return items[0].Suggestion, items[0].Err
}

// SuggestBatch runs the pipeline over a batch of snippets. Tokenization
// failures surface as per-item errors; the returned error is non-nil only
// when the Models themselves are unusable. Each classifier runs once over
// the whole batch, so the per-call model overhead is amortized across
// snippets; results are identical to calling Suggest per snippet.
func (m *Models) SuggestBatch(codes []string) ([]BatchItem, error) {
	return m.SuggestBatchStaged(codes, m.OnStage)
}

// SuggestBatchStaged is SuggestBatch with a per-call stage-timing hook
// (overriding Models.OnStage; nil disables). The serving engine threads
// its per-batch hook through here so infer/corroborate splits land in the
// request trace without sharing mutable Models state across batches.
func (m *Models) SuggestBatchStaged(codes []string, onStage func(string, time.Duration)) ([]BatchItem, error) {
	snippets := make([]Snippet, len(codes))
	for i, code := range codes {
		snippets[i] = Snippet{Code: code}
	}
	return m.suggestSnippets(snippets, onStage)
}

// SuggestSnippets is SuggestBatch over snippets that may carry their parsed
// loop. Verdicts are identical either way — a threaded loop only skips the
// re-parse inside the dependence analysis.
func (m *Models) SuggestSnippets(snippets []Snippet) ([]BatchItem, error) {
	return m.suggestSnippets(snippets, m.OnStage)
}

// SuggestSnippetsStaged is SuggestSnippets with a per-call stage-timing
// hook (overriding Models.OnStage; nil disables).
func (m *Models) SuggestSnippetsStaged(snippets []Snippet, onStage func(string, time.Duration)) ([]BatchItem, error) {
	return m.suggestSnippets(snippets, onStage)
}

func (m *Models) suggestSnippets(snippets []Snippet, onStage func(string, time.Duration)) ([]BatchItem, error) {
	if m.Directive == nil || m.Vocab == nil {
		return nil, fmt.Errorf("advisor: directive model and vocabulary are required")
	}
	// Stage accounting: "infer" sums the batched classifier forwards,
	// "corroborate" the per-item dependence/S2S/LIME work. Both are emitted
	// exactly once per call (possibly zero) so span presence is
	// deterministic.
	var dInfer, dCorroborate time.Duration
	if onStage != nil {
		defer func() {
			onStage("infer", dInfer)
			onStage("corroborate", dCorroborate)
		}()
	}
	maxLen := m.EffectiveMaxLen()
	items := make([]BatchItem, len(snippets))

	// Tokenize everything up front; the encodable snippets form the batch.
	var (
		idsBatch [][]int    // encoded id sequences, one per encodable snippet
		tokBatch [][]string // raw tokens, reused by the LIME attribution
		at       []int      // items index of each batch position
	)
	for i, sn := range snippets {
		toks, err := tokenize.Extract(sn.Code, tokenize.Text)
		if err != nil {
			items[i].Err = fmt.Errorf("advisor: %w", err)
			continue
		}
		idsBatch = append(idsBatch, m.Vocab.Encode(toks, maxLen))
		tokBatch = append(tokBatch, toks)
		at = append(at, i)
	}
	if len(idsBatch) == 0 {
		return items, nil
	}

	// One batched forward for the directive verdicts, then one per clause
	// classifier over the positive subset only.
	t0 := time.Now()
	probs := m.Directive.PredictBatch(idsBatch)
	dInfer += time.Since(t0)
	var (
		posIDs  [][]int
		posAt   []int // items index of each positive
		posToks [][]string
	)
	for j, i := range at {
		s := &Suggestion{Probability: probs[j], Parallelize: probs[j] > 0.5}
		items[i].Suggestion = s
		if s.Parallelize {
			posIDs = append(posIDs, idsBatch[j])
			posAt = append(posAt, i)
			posToks = append(posToks, tokBatch[j])
		} else {
			s.Notes = append(s.Notes, "directive classifier below threshold")
			// Negative verdicts still carry the dependence evidence: a
			// refuted loop's race witnesses are a property of the code, not
			// of the model's answer, and the scan report surfaces them.
			tc := time.Now()
			s.Corroboration.attach(analyzeSnippet(snippets[i]))
			dCorroborate += time.Since(tc)
		}
	}
	if len(posIDs) == 0 {
		return items, nil
	}
	wantPrivate := make([]bool, len(posIDs))
	wantReduction := make([]bool, len(posIDs))
	t0 = time.Now()
	if m.Private != nil {
		wantPrivate = m.Private.PredictLabelBatch(posIDs)
	}
	if m.Reduction != nil {
		wantReduction = m.Reduction.PredictLabelBatch(posIDs)
	}
	dInfer += time.Since(t0)
	t0 = time.Now()
	for k, i := range posAt {
		m.finish(items[i].Suggestion, snippets[i], posToks[k], wantPrivate[k], wantReduction[k])
	}
	dCorroborate += time.Since(t0)
	return items, nil
}

// finish completes a positive suggestion: dependence analysis, clause
// assembly, schedule hint, and corroboration grading. wantPrivate and
// wantReduction carry the clause classifiers' verdicts (false when the
// classifier is absent — the analysis then decides).
func (m *Models) finish(s *Suggestion, sn Snippet, toks []string, wantPrivate, wantReduction bool) {
	d := &pragma.Directive{ParallelFor: true}
	analysis := analyzeSnippet(sn)

	if analysis != nil {
		if m.Private == nil {
			wantPrivate = len(analysis.Private) > 0
		}
		if m.Reduction == nil {
			wantReduction = len(analysis.Reductions) > 0
		}
	}

	// Clause variables come from the analysis; the classifiers gate them
	// (the classifier can also rescue clauses the analysis missed when the
	// loop text alone was insufficient — then we note the gap).
	if wantPrivate {
		if analysis != nil && len(analysis.Private) > 0 {
			d.Private = append(d.Private, analysis.Private...)
			s.Notes = append(s.Notes, fmt.Sprintf("private variables from analysis: %v", analysis.Private))
		} else {
			s.Notes = append(s.Notes, "private clause predicted but no candidate variables found")
		}
	}
	if wantReduction {
		if analysis != nil && len(analysis.Reductions) > 0 {
			d.Reductions = append(d.Reductions, analysis.Reductions...)
			s.Notes = append(s.Notes, "reduction clause from analysis")
		} else {
			s.Notes = append(s.Notes, "reduction clause predicted but no accumulation pattern found")
		}
	}
	// Conversion-rescued arrays are load-bearing: the parallel verdict is
	// only sound with their clauses attached, so they bypass the clause
	// classifiers' gating.
	if analysis != nil && len(analysis.Converted) > 0 {
		conv := map[string]bool{}
		for _, c := range analysis.Converted {
			conv[c] = true
		}
		have := map[string]bool{}
		for _, p := range d.Private {
			have[p] = true
		}
		for _, p := range analysis.Private {
			if conv[p] && !have[p] {
				d.Private = append(d.Private, p)
			}
		}
		haveRed := map[string]bool{}
		for _, r := range d.Reductions {
			haveRed[r.Vars[0]] = true
		}
		for _, r := range analysis.Reductions {
			if conv[r.Vars[0]] && !haveRed[r.Vars[0]] {
				d.Reductions = append(d.Reductions, r)
			}
		}
		s.Notes = append(s.Notes, fmt.Sprintf("conversion clauses attached: %v", analysis.Converted))
	}
	if analysis != nil && analysis.Unbalanced {
		d.Schedule = pragma.ScheduleDynamic
		s.Notes = append(s.Notes, "unbalanced body: schedule(dynamic)")
	}
	s.Directive = d

	// Corroboration grading. Unlike the old ratchet-up confidence ladder, a
	// dependence-analysis disagreement is terminal: a successful S2S compile
	// must not overwrite "the analysis found a carried dependence" — that is
	// exactly the disagreement the paper mines.
	cor := &s.Corroboration
	cor.attach(analysis)
	switch {
	case cor.DepRan && cor.DepAgrees:
		cor.Tier = TierAnalysisAgrees
	case cor.DepRan:
		cor.Tier = TierDisagree
	default:
		cor.Tier = TierModelOnly
	}
	if !m.NoCorroborate {
		cor.S2S = m.compileEach(sn.Code)
		if cor.Tier == TierAnalysisAgrees {
			for _, v := range cor.S2S {
				if v.Parallelized {
					cor.Tier = TierCorroborated
					break
				}
			}
		}
	}
	if cor.Tier == TierDisagree && !m.NoExplain {
		s.Attributions = m.explainDisagreement(sn.Code, toks)
	}
}

// compileEach collects the per-compiler corroboration evidence. A ComPar
// comparator is unwrapped into its member verdicts; any other Compiler
// yields a single verdict under its own name.
func (m *Models) compileEach(code string) []CompilerVerdict {
	flatten := func(name string, res s2s.Result, err error) CompilerVerdict {
		v := CompilerVerdict{Compiler: name}
		if err != nil {
			v.Detail = err.Error()
			return v
		}
		v.Compiled = true
		v.Parallelized = res.Directive != nil
		if !v.Parallelized && len(res.Reasons) > 0 {
			// The last reason is the decisive one (analyses append their
			// verdict on exit).
			v.Detail = res.Reasons[len(res.Reasons)-1]
		}
		return v
	}
	comp := m.comparator()
	if cp, ok := comp.(*s2s.ComPar); ok {
		vs := cp.CompileEach(code)
		out := make([]CompilerVerdict, len(vs))
		for i, v := range vs {
			out[i] = flatten(v.Compiler, v.Result, v.Err)
		}
		return out
	}
	res, err := comp.Compile(code)
	return []CompilerVerdict{flatten(comp.Name(), res, err)}
}

// explainDisagreement runs LIME over the directive classifier's HARD label
// for a disagreeing snippet: which tokens push the model toward
// "parallelize" against the dependence analysis. Two determinism rules keep
// attributions reproducible across entry points and backends:
//
//   - the explainer is seeded from the snippet's content hash (the same
//     sha-256 the scanner dedupes on), not from any run state;
//   - the surrogate is fitted on thresholded labels (1.0/0.0), so backends
//     that agree on every perturbation label produce identical weights,
//     while raw probabilities would differ between float64 and int8.
//
// Attributions are returned in token order covering every (truncated)
// input token; consumers pick their own top-K by |weight|.
func (m *Models) explainDisagreement(code string, toks []string) []lime.Attribution {
	maxLen := m.EffectiveMaxLen()
	if len(toks) > maxLen {
		// The classifier never sees past the encode cap, and the surrogate
		// fit is cubic in token count — explain what the model reads.
		toks = toks[:maxLen]
	}
	ex := lime.New(limeSeed(code))
	ex.Samples = m.LimeSamples
	if ex.Samples <= 0 {
		ex.Samples = 120
	}
	predict := func(batch [][]string) []float64 {
		ids := make([][]int, len(batch))
		for i, ts := range batch {
			ids[i] = m.Vocab.Encode(ts, maxLen)
		}
		probs := m.Directive.PredictBatch(ids)
		labels := make([]float64, len(probs))
		for i, p := range probs {
			if p > 0.5 {
				labels[i] = 1
			}
		}
		return labels
	}
	attrs := ex.ExplainBatch(toks, predict, 0)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Index < attrs[j].Index })
	return attrs
}

// limeSeed derives the attribution seed from the snippet text itself, so
// every entry point (CLI, HTTP, direct advisor) and every backend explains
// a given loop identically.
func limeSeed(code string) int64 {
	sum := sha256.Sum256([]byte(code))
	return int64(binary.BigEndian.Uint64(sum[:8]))
}

// analyzeSnippet runs the dependence analysis over the snippet's target
// loop, parsing only when the caller did not thread one in; nil when no
// loop is analyzable.
func analyzeSnippet(sn Snippet) *dep.Analysis {
	loop := sn.Loop
	funcs := map[string]*cast.FuncDef{}
	if loop == nil {
		f, err := cparse.Parse(sn.Code)
		if err != nil {
			return nil
		}
		loop = s2s.FirstLoop(f)
		for _, it := range f.Items {
			if fd, ok := it.(*cast.FuncDef); ok {
				funcs[fd.Name] = fd
			}
		}
	}
	if loop == nil {
		return nil
	}
	// The advisor runs with the conversion passes on: a loop whose refuting
	// dependence privatizes or reduces away is advisable, with the rescued
	// clause attached. The corpus labeler and S2S baselines keep the plain
	// AnalyzeLoop verdicts.
	return dep.AnalyzeLoopOpts(loop, funcs, dep.Options{
		ArrayPrivatization: true,
		ArrayReductions:    true,
	})
}

// analyze parses the snippet and runs the dependence analysis over its
// target loop; nil when no loop is analyzable.
func analyze(code string) *dep.Analysis {
	return analyzeSnippet(Snippet{Code: code})
}

// Annotate returns the snippet with the suggested directive prepended, or
// the snippet unchanged when no directive is suggested.
func (s *Suggestion) Annotate(code string) string {
	if s.Directive == nil {
		return code
	}
	return s.Directive.String() + "\n" + code
}
