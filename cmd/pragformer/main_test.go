package main

import (
	"testing"

	"pragformer/internal/tokenize"
)

func TestVocabSaveLoadRoundTrip(t *testing.T) {
	v := tokenize.BuildVocab([][]string{{"for", "(", "i", "=", "0", ")"}}, 1)
	path := t.TempDir() + "/vocab.txt"
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	v2, err := tokenize.LoadVocabFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("size %d want %d", v2.Size(), v.Size())
	}
	for _, tok := range []string{"for", "(", "i", "=", "0", ")"} {
		if v2.ID(tok) != v.ID(tok) {
			t.Errorf("id(%q) = %d want %d", tok, v2.ID(tok), v.ID(tok))
		}
	}
}

func TestLoadVocabRejectsShortFile(t *testing.T) {
	path := t.TempDir() + "/short.txt"
	if err := writeFile(path, "[PAD]\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := tokenize.LoadVocabFile(path); err == nil {
		t.Fatal("expected error")
	}
}

func TestTaskFromName(t *testing.T) {
	if taskFromName("directive").String() != "directive" {
		t.Error("directive task wrong")
	}
	if taskFromName("private").String() != "private" {
		t.Error("private task wrong")
	}
	if taskFromName("reduction").String() != "reduction" {
		t.Error("reduction task wrong")
	}
}
