package dep

import (
	"sort"

	"pragformer/internal/cast"
	"pragformer/internal/pragma"
)

// classifyScalars partitions scalar accesses into private / reduction /
// carried classes. It returns false (and records a reason) when a scalar
// carries a dependence that blocks parallelization.
func (a *Analysis) classifyScalars(ctx *collector) bool {
	type scalarInfo struct {
		reads             int
		writes            int
		accums            int
		accumOps          map[string]bool
		firstSeen         bool
		firstIsPlainWrite bool // first access is an unconditional `x = ...`
	}
	infos := map[string]*scalarInfo{}
	var names []string
	for _, acc := range ctx.accesses {
		if acc.subs != nil {
			continue
		}
		info := infos[acc.name]
		if info == nil {
			info = &scalarInfo{accumOps: map[string]bool{}}
			infos[acc.name] = info
			names = append(names, acc.name)
		}
		if !info.firstSeen {
			info.firstSeen = true
			info.firstIsPlainWrite = acc.write && acc.plainWrite && acc.accumOp == "" && !acc.cond
		}
		if acc.write {
			info.writes++
			if acc.accumOp != "" {
				info.accums++
				info.accumOps[acc.accumOp] = true
			}
		} else {
			info.reads++
		}
	}
	sort.Strings(names)

	for _, name := range names {
		info := infos[name]
		if info.writes == 0 {
			continue // read-only scalar: shared, safe
		}
		// Reduction idiom: every write is an accumulation with one
		// consistent operator and the scalar is never read outside the
		// accumulations (those self-reads are not recorded as reads).
		if len(info.accumOps) == 1 && info.writes == info.accums && info.reads == 0 {
			op := soleKey(info.accumOps)
			a.Reductions = append(a.Reductions, pragma.Reduction{Op: op, Vars: []string{name}})
			continue
		}
		// Private idiom: the first access in each iteration is an
		// unconditional plain write, so the iteration fully defines the
		// scalar before any use (covers `s = 0; s += ...; c[i][j] = s`).
		if info.firstIsPlainWrite {
			a.Private = append(a.Private, name)
			continue
		}
		a.Witnesses = append(a.Witnesses, a.scalarWitness(ctx, name))
		a.reason("scalar %s carries a loop dependence (read-modify-write across iterations)", name)
		return false
	}

	sort.Strings(a.Private)
	sort.Slice(a.Reductions, func(i, j int) bool { return a.Reductions[i].Vars[0] < a.Reductions[j].Vars[0] })
	return true
}

func soleKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

// accumShape recognizes reduction-shaped assignments to scalar `name`:
// compound `s op= e`, plain `s = s op e` / `s = e op s` (commutative op),
// `s = s - e`, and `s = fmax(s, e)` / `s = fmin(s, e)`. Returns the OpenMP
// reduction operator and the accumulated (non-self) expression.
func accumShape(v *cast.Assign, name string) (op string, rhs cast.Expr, ok bool) {
	switch v.Op {
	case "+=", "-=", "*=", "&=", "|=", "^=":
		return v.Op[:len(v.Op)-1], v.R, true
	case "=":
		switch r := v.R.(type) {
		case *cast.BinaryOp:
			commutative := r.Op == "+" || r.Op == "*" || r.Op == "&" || r.Op == "|" || r.Op == "^"
			if l, okL := r.L.(*cast.Ident); okL && l.Name == name && (commutative || r.Op == "-") {
				return r.Op, r.R, true
			}
			if rr, okR := r.R.(*cast.Ident); okR && rr.Name == name && commutative {
				return r.Op, r.L, true
			}
		case *cast.FuncCall:
			fn, okF := r.Fun.(*cast.Ident)
			if okF && (fn.Name == "fmax" || fn.Name == "fmin") && len(r.Args) == 2 {
				redOp := "max"
				if fn.Name == "fmin" {
					redOp = "min"
				}
				if id, okA := r.Args[0].(*cast.Ident); okA && id.Name == name {
					return redOp, r.Args[1], true
				}
				if id, okA := r.Args[1].(*cast.Ident); okA && id.Name == name {
					return redOp, r.Args[0], true
				}
			}
		}
	}
	return "", nil, false
}

// refersTo reports whether expression e mentions identifier name.
func refersTo(e cast.Expr, name string) bool {
	found := false
	cast.Walk(e, func(n cast.Node) bool {
		if id, ok := n.(*cast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

